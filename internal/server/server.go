// Package server implements the aplusd TCP serving layer over a
// shard.Cluster: it speaks the line-oriented proto protocol, streams query
// rows, propagates per-request limits into the engine's governance gates,
// applies write backpressure from the shards' pending-write backlog, and
// lets a client cancel an in-flight query mid-stream without tearing the
// connection down.
//
// Connection model: each connection is served by one goroutine that owns
// all response writes, plus a reader goroutine that turns the socket into
// a channel of request lines. While a query streams, the serving goroutine
// selects between query completion and incoming lines, so a `cancel` (or a
// disconnect) aborts the query promptly via context cancellation; any
// other line that arrives early is stashed and served after the query's
// final response, preserving request/response order.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"github.com/aplusdb/aplus"
	"github.com/aplusdb/aplus/internal/proto"
	"github.com/aplusdb/aplus/internal/shard"
)

// Options configures a Server.
type Options struct {
	// Addr is the TCP listen address for Start (e.g. "127.0.0.1:7687";
	// ":0" picks a free port, reported by Addr).
	Addr string
	// DefaultLimits applies to count/profile/query requests that carry no
	// limits of their own. Zero means only the cluster's own configured
	// governance applies.
	DefaultLimits aplus.QueryLimits
	// DefaultMaxRows caps a query's row stream when the request doesn't
	// set its own cap (0 = unlimited). Hitting the cap stops the query
	// cleanly and marks the response truncated; it is not an error.
	DefaultMaxRows int64
	// MaxPendingWrites rejects write verbs with a backpressure error while
	// the cluster's aggregate pending-write backlog exceeds this threshold
	// (0 = no backpressure).
	MaxPendingWrites int
	// IdleTimeout disconnects a connection that sends no request for this
	// long (0 = never). The clock only runs between requests: a streaming
	// or long-running query keeps the connection alive.
	IdleTimeout time.Duration
}

// Server serves a shard.Cluster over TCP.
type Server struct {
	c  *shard.Cluster
	o  Options
	ln net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// New wraps a cluster. The server does not own the cluster: Close stops
// serving but leaves the cluster open for the caller to close.
func New(c *shard.Cluster, o Options) *Server {
	return &Server{c: c, o: o, conns: make(map[net.Conn]struct{})}
}

// Start listens on Options.Addr and serves in the background until Close.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.o.Addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return aplus.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(ln)
	}()
	return nil
}

// Addr reports the bound listen address ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener, closes every live connection, and waits for
// their handlers to drain (canceling any in-flight queries).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// maxLine bounds a single request line (a query text plus JSON framing).
const maxLine = 1 << 20

func (s *Server) handle(conn net.Conn) {
	bw := bufio.NewWriter(conn)
	lines := make(chan string, 8)
	// Drain after conn.Close (defers run LIFO) so a reader goroutine
	// blocked on a full channel can always finish and close it.
	defer func() {
		for range lines {
		}
	}()
	defer conn.Close()
	go func() {
		sc := bufio.NewScanner(conn)
		sc.Buffer(make([]byte, 0, 4096), maxLine)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()

	connCtx, connCancel := context.WithCancel(context.Background())
	defer connCancel()

	var pending []string
	for {
		var line string
		if len(pending) > 0 {
			line, pending = pending[0], pending[1:]
		} else {
			if s.o.IdleTimeout > 0 {
				conn.SetReadDeadline(time.Now().Add(s.o.IdleTimeout))
			}
			l, ok := <-lines
			if !ok {
				return
			}
			if s.o.IdleTimeout > 0 {
				conn.SetReadDeadline(time.Time{})
			}
			line = l
		}
		verb, payload := splitLine(line)
		switch verb {
		case "":
			continue
		case "quit":
			writeOK(bw, struct{}{})
			bw.Flush()
			return
		case "cancel":
			// No query in flight: a stray cancel is a no-op and, by
			// protocol, never gets a response line.
			continue
		case "query":
			if !s.serveQuery(connCtx, conn, bw, lines, &pending, payload) {
				return
			}
		default:
			s.serveSimple(connCtx, bw, verb, payload)
		}
		if bw.Flush() != nil {
			return
		}
	}
}

func splitLine(line string) (verb, payload string) {
	line = strings.TrimSpace(line)
	if i := strings.IndexByte(line, ' '); i >= 0 {
		return line[:i], strings.TrimSpace(line[i+1:])
	}
	return line, ""
}

func writeOK(bw *bufio.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return writeErr(bw, fmt.Errorf("encoding response: %w", err))
	}
	bw.WriteString("ok ")
	bw.Write(b)
	return bw.WriteByte('\n')
}

func writeErr(bw *bufio.Writer, err error) error {
	b, _ := json.Marshal(proto.ErrMsg{Code: proto.ErrorCode(err), Msg: err.Error()})
	bw.WriteString("err ")
	bw.Write(b)
	return bw.WriteByte('\n')
}

func writeBadRequest(bw *bufio.Writer, msg string) error {
	b, _ := json.Marshal(proto.ErrMsg{Code: proto.CodeBadRequest, Msg: msg})
	bw.WriteString("err ")
	bw.Write(b)
	return bw.WriteByte('\n')
}

func decode[T any](payload string) (T, error) {
	var v T
	if payload == "" {
		return v, nil
	}
	err := json.Unmarshal([]byte(payload), &v)
	return v, err
}

// limitsFor resolves request limits against the server defaults:
// any field the request leaves zero inherits the default.
func (s *Server) limitsFor(l proto.Limits) aplus.QueryLimits {
	out := l.ToQueryLimits()
	if out.MaxICost == 0 {
		out.MaxICost = s.o.DefaultLimits.MaxICost
	}
	if out.MaxRows == 0 {
		out.MaxRows = s.o.DefaultLimits.MaxRows
	}
	if out.MaxDuration == 0 {
		out.MaxDuration = s.o.DefaultLimits.MaxDuration
	}
	return out
}

func (s *Server) checkBackpressure() error {
	if s.o.MaxPendingWrites <= 0 {
		return nil
	}
	if st := s.c.Stats(); st.Aggregate.PendingWrites > s.o.MaxPendingWrites {
		return fmt.Errorf("%w: %d pending writes over threshold %d",
			proto.ErrBackpressure, st.Aggregate.PendingWrites, s.o.MaxPendingWrites)
	}
	return nil
}

func (s *Server) serveSimple(ctx context.Context, bw *bufio.Writer, verb, payload string) {
	switch verb {
	case "open":
		writeOK(bw, proto.OpenResp{Shards: s.c.NumShards()})
	case "count", "profile":
		req, err := decode[proto.CountReq](payload)
		if err != nil {
			writeBadRequest(bw, err.Error())
			return
		}
		n, m, err := s.c.CountProfiledLimited(ctx, req.Q, s.limitsFor(req.Limits))
		if err != nil {
			writeErr(bw, err)
			return
		}
		resp := proto.CountResp{N: n}
		if verb == "profile" {
			resp.ICost = m.ICost
			resp.PredEvals = m.PredEvals
			resp.EstICost = m.EstimatedICost
		}
		writeOK(bw, resp)
	case "aggregate":
		req, err := decode[proto.AggregateReq](payload)
		if err != nil {
			writeBadRequest(bw, err.Error())
			return
		}
		fn, err := aplus.ParseAggFunc(req.Func)
		if err != nil {
			writeBadRequest(bw, err.Error())
			return
		}
		v, m, err := s.c.Aggregate(ctx, req.Q, fn, req.Var, req.Prop, s.limitsFor(req.Limits))
		if err != nil {
			writeErr(bw, err)
			return
		}
		writeOK(bw, proto.AggregateResp{
			Rows:      v.Rows,
			Value:     v.Value,
			Valid:     v.Valid,
			ICost:     m.ICost,
			PredEvals: m.PredEvals,
			EstICost:  m.EstimatedICost,
		})
	case "explain":
		req, err := decode[proto.ExplainReq](payload)
		if err != nil {
			writeBadRequest(bw, err.Error())
			return
		}
		plan, err := s.c.Explain(req.Q)
		if err != nil {
			writeErr(bw, err)
			return
		}
		writeOK(bw, proto.ExplainResp{Plan: plan})
	case "analyze":
		req, err := decode[proto.AnalyzeReq](payload)
		if err != nil {
			writeBadRequest(bw, err.Error())
			return
		}
		t, err := s.c.ExplainAnalyze(ctx, req.Q, s.limitsFor(req.Limits))
		if err != nil {
			writeErr(bw, err)
			return
		}
		writeOK(bw, proto.AnalyzeResp{Trace: *t})
	case "exec":
		req, err := decode[proto.ExecReq](payload)
		if err != nil {
			writeBadRequest(bw, err.Error())
			return
		}
		if err := s.c.Exec(req.DDL); err != nil {
			writeErr(bw, err)
			return
		}
		writeOK(bw, struct{}{})
	case "flush":
		if err := s.c.Flush(); err != nil {
			writeErr(bw, err)
			return
		}
		writeOK(bw, struct{}{})
	case "addv":
		req, err := decode[proto.AddVertexReq](payload)
		if err != nil {
			writeBadRequest(bw, err.Error())
			return
		}
		if err := s.checkBackpressure(); err != nil {
			writeErr(bw, err)
			return
		}
		id, err := s.c.AddVertex(req.Label, proto.ToProps(req.Props))
		if err != nil {
			writeErr(bw, err)
			return
		}
		writeOK(bw, proto.AddVertexResp{ID: id})
	case "adde":
		req, err := decode[proto.AddEdgeReq](payload)
		if err != nil {
			writeBadRequest(bw, err.Error())
			return
		}
		if err := s.checkBackpressure(); err != nil {
			writeErr(bw, err)
			return
		}
		id, err := s.c.AddEdge(req.Src, req.Dst, req.Label, proto.ToProps(req.Props))
		if err != nil {
			writeErr(bw, err)
			return
		}
		writeOK(bw, proto.AddEdgeResp{ID: id})
	case "dele":
		req, err := decode[proto.DeleteEdgeReq](payload)
		if err != nil {
			writeBadRequest(bw, err.Error())
			return
		}
		if err := s.checkBackpressure(); err != nil {
			writeErr(bw, err)
			return
		}
		if err := s.c.DeleteEdge(req.ID); err != nil {
			writeErr(bw, err)
			return
		}
		writeOK(bw, struct{}{})
	case "stats":
		st := s.c.Stats()
		writeOK(bw, proto.StatsResp{
			Shards:        s.c.NumShards(),
			Diverged:      st.Diverged,
			DivergedCause: st.DivergedCause,
			Aggregate:     st.Aggregate,
			PerShard:      st.Shards,
		})
	case "health":
		st := s.c.Stats()
		writeOK(bw, proto.HealthResp{
			OK:              !st.Aggregate.Degraded && !st.Diverged,
			Degraded:        st.Aggregate.Degraded,
			Diverged:        st.Diverged,
			QueriesInFlight: st.Aggregate.QueriesInFlight,
			PendingWrites:   st.Aggregate.PendingWrites,
		})
	default:
		writeBadRequest(bw, "unknown verb "+verb)
	}
}

// serveQuery streams rows for one query. Returns false when the connection
// is gone and the handler should exit. Rows are written by the query
// goroutine; the serving goroutine writes nothing until the query is done,
// so the two never interleave on the buffered writer.
func (s *Server) serveQuery(connCtx context.Context, conn net.Conn, bw *bufio.Writer, lines chan string, pending *[]string, payload string) bool {
	req, err := decode[proto.QueryReq](payload)
	if err != nil {
		writeBadRequest(bw, err.Error())
		return true
	}
	rowCap := req.MaxRows
	if rowCap == 0 {
		rowCap = s.o.DefaultMaxRows
	}
	qctx, qcancel := context.WithCancel(connCtx)
	defer qcancel()

	var (
		rows      int64
		truncated bool
		writeErrd bool
	)
	done := make(chan error, 1)
	go func() {
		done <- s.c.QueryLimited(qctx, req.Q, s.limitsFor(req.Limits), func(r aplus.Row) bool {
			b, err := json.Marshal(proto.Row{V: r.Vertices, E: r.Edges})
			if err != nil {
				writeErrd = true
				return false
			}
			bw.WriteString("row ")
			bw.Write(b)
			bw.WriteByte('\n')
			if bw.Flush() != nil {
				writeErrd = true
				return false
			}
			rows++
			if rowCap > 0 && rows >= rowCap {
				truncated = true
				return false
			}
			return true
		})
	}()

	for {
		select {
		case err := <-done:
			if writeErrd {
				return false
			}
			if err != nil {
				writeErr(bw, err)
			} else {
				writeOK(bw, proto.QueryDone{Rows: rows, Truncated: truncated})
			}
			return true
		case line, ok := <-lines:
			if !ok {
				// Client hung up: abort the query, wait for the engine to
				// release its snapshot, then drop the connection.
				qcancel()
				<-done
				return false
			}
			if verb, _ := splitLine(line); verb == "cancel" {
				qcancel()
				continue
			}
			// A pipelined request raced the stream: serve it afterwards.
			*pending = append(*pending, line)
		}
	}
}
