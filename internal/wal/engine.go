package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/obs"
	"github.com/aplusdb/aplus/internal/snap"
	"github.com/aplusdb/aplus/internal/storage"
	"github.com/aplusdb/aplus/internal/vfs"
)

// WALFile is the name of the write-ahead log inside a database directory.
const WALFile = "wal.log"

// ErrClosed is returned by appends against a closed engine.
var ErrClosed = errors.New("wal: engine is closed")

// Engine owns one database directory: the write-ahead log and the
// checkpoint files. It is safe for concurrent use; appends serialize on an
// internal mutex (callers already serialize on the snapshot writer mutex),
// and checkpoint writes run concurrently with appends, only excluding them
// for the brief WAL-truncation rewrite.
type Engine struct {
	dir   string
	fsync bool
	fs    vfs.FS

	// mu guards the log handle, lastDiskSeq, the retained-checkpoint
	// bookkeeping, and closed.
	mu          sync.Mutex
	log         *log
	lastDiskSeq uint64
	closed      bool

	// curCkpt / prevCkptSeq track the newest retained checkpoint and the
	// sequence number of the second-newest (the WAL truncation cutoff: the
	// log must keep covering the fallback checkpoint).
	hasCkpt     bool
	curCkpt     ckptInfo
	prevCkptSeq uint64
	hasPrevSeq  bool

	// ckptMu serializes checkpoint writers against each other.
	ckptMu sync.Mutex
	// ready gates checkpointing until recovery replay has finished.
	ready atomic.Bool

	walBytes atomic.Int64
	// tailBytes approximates the log bytes past the newest checkpoint's
	// coverage — the portion recovery must replay and the only portion a
	// further fold+checkpoint can shrink. Appends add to it; a completed
	// checkpoint resets it (records committed during the checkpoint write
	// are undercounted until the next append, which only delays the next
	// fold trigger).
	tailBytes atomic.Int64
	ckptErr   atomic.Pointer[string]
	ckptBytes atomic.Int64

	// degraded, once set, holds the cause of the WAL poisoning: every
	// later Append fails fast with ErrDegraded and checkpointing is
	// suppressed (no truncation over untrusted state). Never cleared —
	// recovery is a restart.
	degraded atomic.Pointer[string]
	// walErr is the most recent append failure of any kind (ENOSPC,
	// injected fault, fsync), for observability.
	walErr atomic.Pointer[string]

	// fsyncHist records every WAL fsync's duration; each (re)opened log
	// carries a pointer to it, so the series survives truncation reopens.
	fsyncHist obs.Histogram
}

// Recovered is the durable state found in a database directory at open: the
// decoded checkpoint image (nil Store/Graph when the directory holds none)
// and the WAL tail to replay on top of it, in commit order.
type Recovered struct {
	Graph *storage.Graph
	Store *index.Store
	// Seq and Epoch are the checkpoint's coverage counters (0 without one).
	Seq, Epoch uint64
	// Tail holds the records with Seq > checkpoint Seq. Replaying them
	// through the ordinary commit path reproduces the pre-crash state.
	Tail []snap.Record
}

// Open opens (creating if necessary) a database directory: it selects the
// newest checkpoint that decodes cleanly — quarantining corrupt ones as
// .corrupt and falling back to the previous — scans the WAL, discards a
// torn tail, and returns the engine plus the recovered state. fsync
// disables nothing but the per-operation fsync calls (tests and benchmarks
// of the non-durability costs set it false). fs selects the filesystem;
// nil means the real one (vfs.OS).
func Open(dir string, fsync bool, fs vfs.FS) (*Engine, *Recovered, error) {
	if fs == nil {
		fs = vfs.OS{}
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, err
	}
	e := &Engine{dir: dir, fsync: fsync, fs: fs}
	rec := &Recovered{}

	ckpts, err := listCheckpoints(fs, dir)
	if err != nil {
		return nil, nil, err
	}
	for _, ci := range ckpts {
		g, st, seq, epoch, damaged, err := loadCheckpoint(fs, filepath.Join(dir, ci.name))
		if err != nil {
			if !damaged {
				// A read error, not bad content (permissions, I/O): the
				// image may be perfectly fine, so propagate instead of
				// quarantining a recoverable checkpoint forever.
				return nil, nil, err
			}
			// Quarantine and fall back to the previous checkpoint; the WAL
			// retains the records covering it (truncation always keeps the
			// suffix past the second-newest checkpoint). A failed
			// quarantine rename leaves the corrupt file in place — harmless
			// for recovery (it stays skipped) but worth surfacing.
			if qerr := quarantine(fs, dir, ci.name, fsync); qerr != nil {
				msg := fmt.Sprintf("quarantine %s: %v", ci.name, qerr)
				e.ckptErr.Store(&msg)
			}
			continue
		}
		ci.seq = seq
		if sz, statErr := fs.Stat(filepath.Join(dir, ci.name)); statErr == nil {
			ci.bytes = sz
		}
		e.hasCkpt = true
		e.curCkpt = ci
		e.ckptBytes.Store(ci.bytes)
		rec.Graph, rec.Store, rec.Seq, rec.Epoch = g, st, seq, epoch
		break
	}

	walPath := filepath.Join(dir, WALFile)
	buf, err := fs.ReadFile(walPath)
	created := false
	if err != nil {
		if !os.IsNotExist(err) {
			return nil, nil, err
		}
		created = true
	}
	payloads, validSize := scanFrames(buf)
	if int64(len(buf)) > validSize && hasLaterValidFrame(buf[validSize:]) {
		// The scan stopped on a bad frame but complete valid frames follow:
		// that is mid-log corruption of fsync-acknowledged records, not a
		// torn final write. Fail loudly instead of truncating durable data.
		return nil, nil, fmt.Errorf("wal: %s is corrupt at offset %d with durable records after it", walPath, validSize)
	}
	records := make([]snap.Record, 0, len(payloads))
	for i, p := range payloads {
		// A torn write can never produce a CRC-valid frame (scanFrames
		// already discarded the torn tail), so a framed record that fails
		// to decode is real corruption of an fsync-acknowledged commit —
		// fail the open rather than silently dropping durable data,
		// wherever in the log it sits.
		r, err := decodeRecord(p)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: record %d of %s is corrupt: %w", i, walPath, err)
		}
		if len(records) > 0 && r.Seq != records[len(records)-1].Seq+1 {
			return nil, nil, fmt.Errorf("wal: %s has a sequence gap (%d then %d)", walPath, records[len(records)-1].Seq, r.Seq)
		}
		records = append(records, r)
	}
	if len(records) > 0 && records[0].Seq > rec.Seq+1 {
		return nil, nil, fmt.Errorf("wal: %s starts at record %d but the checkpoint covers only up to %d",
			walPath, records[0].Seq, rec.Seq)
	}
	e.log, err = openLog(fs, walPath, validSize, fsync)
	if err != nil {
		return nil, nil, err
	}
	e.log.fsyncHist = &e.fsyncHist
	if created && fsync {
		// The log file was just created: persist its directory entry now,
		// or the first crash could lose the whole (fsync-acknowledged) log
		// by losing its name.
		if err := fs.SyncDir(dir); err != nil {
			e.log.close()
			return nil, nil, err
		}
	}
	if int64(len(buf)) > validSize {
		// Discard the torn tail on disk so the next append starts clean.
		if err := e.log.f.Truncate(validSize); err != nil {
			e.log.close()
			return nil, nil, err
		}
	}
	e.walBytes.Store(validSize)
	e.lastDiskSeq = rec.Seq
	for i, r := range records {
		if r.Seq > rec.Seq {
			rec.Tail = append(rec.Tail, r)
			e.tailBytes.Add(frameHeaderSize + int64(len(payloads[i])))
		}
		if r.Seq > e.lastDiskSeq {
			e.lastDiskSeq = r.Seq
		}
	}
	return e, rec, nil
}

// SetReady enables checkpointing; the opener calls it once recovery replay
// has finished, so mid-replay folds do not checkpoint half-replayed state.
func (e *Engine) SetReady() { e.ready.Store(true) }

// Append makes one record durable. It is the snap.Options.WALAppend hook:
// called under the snapshot writer mutex immediately before the publication
// swap, so WAL order is commit order and a failed append aborts the commit.
// Records already on disk (recovery replaying the tail re-commits them
// through the same path) are recognized by their sequence number and
// skipped, which makes replay idempotent by construction.
//
// A failed fsync degrades the engine: the failing append (and every one
// after it) returns an error wrapping ErrDegraded, and no checkpoint or
// truncation is taken over the untrusted state. A failed write that
// truncates back cleanly does not degrade — the valid prefix stands and a
// later commit may succeed.
func (e *Engine) Append(rec snap.Record) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if rec.Seq <= e.lastDiskSeq {
		return nil
	}
	if e.closed {
		return ErrClosed
	}
	if cause := e.degraded.Load(); cause != nil {
		return fmt.Errorf("%w (cause: %s)", ErrDegraded, *cause)
	}
	if rec.Seq != e.lastDiskSeq+1 {
		return fmt.Errorf("wal: append of record %d would leave a gap after %d", rec.Seq, e.lastDiskSeq)
	}
	prevSize := e.log.size
	if err := e.log.append(encodeRecord(rec)); err != nil {
		msg := err.Error()
		e.walErr.Store(&msg)
		if e.log.poison != nil {
			cause := e.log.poison.Error()
			e.degraded.Store(&cause)
			return errors.Join(ErrDegraded, err)
		}
		return err
	}
	e.lastDiskSeq = rec.Seq
	e.walBytes.Store(e.log.size)
	e.tailBytes.Add(e.log.size - prevSize)
	return nil
}

// Degraded reports whether the WAL has been poisoned, and the cause.
func (e *Engine) Degraded() (bool, string) {
	if cause := e.degraded.Load(); cause != nil {
		return true, *cause
	}
	return false, ""
}

// CheckpointSnapshot serializes a frozen snapshot to checkpoint-<epoch>,
// retires checkpoints beyond the newest two, and truncates the WAL prefix
// the retained pair no longer needs. Snapshots with a non-empty delta or
// nothing new since the last checkpoint are skipped, as is everything once
// the engine is degraded (no new files or truncation over untrusted
// state). Heavy work (encoding, file write) runs without blocking appends;
// only the WAL rewrite briefly excludes them. The outcome is mirrored into
// Stats().LastCheckpointError.
func (e *Engine) CheckpointSnapshot(s *snap.Snapshot) error {
	if !e.ready.Load() {
		return nil
	}
	if e.degraded.Load() != nil {
		return nil
	}
	if !s.Delta().Empty() {
		return nil
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	e.mu.Lock()
	skip := e.closed || (e.hasCkpt && s.Seq() <= e.curCkpt.seq)
	e.mu.Unlock()
	if skip {
		return nil
	}
	err := e.checkpoint(s)
	if err != nil {
		msg := err.Error()
		e.ckptErr.Store(&msg)
	} else {
		e.ckptErr.Store(nil)
	}
	return err
}

func (e *Engine) checkpoint(s *snap.Snapshot) error {
	data := encodeCheckpoint(s.Seq(), s.Epoch(), s.Graph(), s.Store())
	name := ckptName(s.Epoch())
	if err := writeFileAtomic(e.fs, e.dir, name, data, e.fsync); err != nil {
		return err
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	prev := e.curCkpt
	hadPrev := e.hasCkpt
	e.hasCkpt = true
	e.curCkpt = ckptInfo{name: name, epoch: s.Epoch(), seq: s.Seq(), bytes: int64(len(data))}
	e.ckptBytes.Store(int64(len(data)))
	// The new checkpoint covers every record up to its Seq; what remains is
	// the tail recovery would replay, which future appends re-accumulate.
	e.tailBytes.Store(0)
	if hadPrev {
		e.prevCkptSeq, e.hasPrevSeq = prev.seq, true
	}
	// The WAL must keep covering the fallback checkpoint: cut at the
	// second-newest checkpoint's sequence number. Until a second
	// checkpoint exists there is no fallback but the full log, so the
	// first checkpoint truncates nothing — a corrupt sole checkpoint must
	// still be recoverable by replaying the WAL from scratch.
	var truncErr error
	if e.hasPrevSeq {
		truncErr = e.truncateWALLocked(e.prevCkptSeq)
	}
	e.mu.Unlock()

	// Retire checkpoints beyond the newest two. Stray files are harmless
	// for recovery (they are never selected over newer valid checkpoints),
	// but a failure here means disk is not being reclaimed — surface it so
	// the merger retries and Stats shows it.
	var retireErr error
	if all, listErr := listCheckpoints(e.fs, e.dir); listErr != nil {
		retireErr = listErr
	} else {
		keep := map[string]bool{e.curCkpt.name: true}
		if hadPrev {
			keep[prev.name] = true
		}
		removed := false
		for _, ci := range all {
			if !keep[ci.name] {
				if rmErr := e.fs.Remove(filepath.Join(e.dir, ci.name)); rmErr != nil {
					retireErr = errors.Join(retireErr, rmErr)
				} else {
					removed = true
				}
			}
		}
		if removed && e.fsync {
			if sdErr := e.fs.SyncDir(e.dir); sdErr != nil {
				retireErr = errors.Join(retireErr, sdErr)
			}
		}
	}
	return errors.Join(truncErr, retireErr)
}

// truncateWALLocked rewrites the log keeping only records with sequence
// numbers past cutoff. Callers hold e.mu, so no append can interleave.
func (e *Engine) truncateWALLocked(cutoff uint64) error {
	path := filepath.Join(e.dir, WALFile)
	buf, err := e.fs.ReadFile(path)
	if err != nil {
		return err
	}
	payloads, _ := scanFrames(buf)
	keep := make([][]byte, 0, len(payloads))
	for _, p := range payloads {
		seq, n := binary.Uvarint(p)
		if n <= 0 {
			return fmt.Errorf("wal: unreadable sequence number during truncation")
		}
		if seq > cutoff {
			keep = append(keep, p)
		}
	}
	if len(keep) == len(payloads) {
		return nil // nothing to cut
	}
	w := make([]byte, 0, len(buf))
	for _, p := range keep {
		w = appendFrame(w, p)
	}
	prevSize := e.log.size
	if err := e.log.close(); err != nil {
		e.reopenLogLocked(prevSize)
		return err
	}
	if err := writeFileAtomic(e.fs, e.dir, WALFile, w, e.fsync); err != nil {
		// The failure struck either before the rename (the original log is
		// intact at prevSize) or at the directory sync just after it (the
		// truncated log is live but its name not yet durable — a crash may
		// resurface the original, which the checkpoints also cover). Either
		// way the live file ends on a record boundary: size it and reopen
		// there, so appends continue at the right offset and the truncation
		// is retried at the next checkpoint. Reopening at a guessed size
		// after the rename landed would leave a hole of zeros that reads
		// back as mid-log corruption.
		size := prevSize
		if sz, serr := e.fs.Stat(path); serr == nil {
			size = sz
		}
		e.walBytes.Store(size)
		e.reopenLogLocked(size)
		return err
	}
	e.walBytes.Store(int64(len(w)))
	e.reopenLogLocked(int64(len(w)))
	if e.log.f == nil {
		return fmt.Errorf("wal: reopen after truncation failed")
	}
	return nil
}

// reopenLogLocked best-effort reopens the on-disk log for appending at
// size after the handle was closed; on failure the closed handle stays in
// place and appends keep failing (the on-disk state is still consistent).
func (e *Engine) reopenLogLocked(size int64) {
	if nl, err := openLog(e.fs, filepath.Join(e.dir, WALFile), size, e.fsync); err == nil {
		nl.fsyncHist = &e.fsyncHist
		e.log = nl
	}
}

// WALBytes returns the current size of the write-ahead log.
func (e *Engine) WALBytes() int64 { return e.walBytes.Load() }

// WALTailBytes returns the log bytes past the newest checkpoint's coverage
// — the snap.Options.WALTailBytes hook. Scheduling folds on the tail
// rather than the whole file matters: truncation always retains the prefix
// covering the fallback checkpoint, so total size stays above any budget
// for one extra cycle and would re-trigger a redundant full checkpoint on
// the very next commit.
func (e *Engine) WALTailBytes() int64 { return e.tailBytes.Load() }

// Stats is a point-in-time observation of the durability subsystem.
type Stats struct {
	// WALBytes is the current size of the write-ahead log.
	WALBytes int64
	// CheckpointEpoch and CheckpointSeq identify the newest checkpoint
	// (0/0 before the first).
	CheckpointEpoch uint64
	CheckpointSeq   uint64
	// CheckpointBytes is the newest checkpoint's file size.
	CheckpointBytes int64
	// LastCheckpointError is the most recent checkpoint failure ("" when
	// the last attempt succeeded). A persistent value means the WAL cannot
	// currently be truncated and will keep growing.
	LastCheckpointError string
	// Degraded reports that a failed WAL fsync poisoned the log: writes
	// fail fast with ErrDegraded, reads keep serving, and DegradedCause
	// holds the original failure. Cleared only by reopening the database.
	Degraded      bool
	DegradedCause string
	// LastWALError is the most recent append failure of any kind ("" if
	// none) — set also for non-degrading failures like a full disk.
	LastWALError string
	// FsyncHist is the latency histogram of every WAL fsync since open.
	FsyncHist obs.HistStats
}

// Stats reports durability counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	st := Stats{
		WALBytes:        e.walBytes.Load(),
		CheckpointBytes: e.ckptBytes.Load(),
	}
	if e.hasCkpt {
		st.CheckpointEpoch = e.curCkpt.epoch
		st.CheckpointSeq = e.curCkpt.seq
	}
	e.mu.Unlock()
	if msg := e.ckptErr.Load(); msg != nil {
		st.LastCheckpointError = *msg
	}
	if cause := e.degraded.Load(); cause != nil {
		st.Degraded = true
		st.DegradedCause = *cause
	}
	if msg := e.walErr.Load(); msg != nil {
		st.LastWALError = *msg
	}
	st.FsyncHist = e.fsyncHist.Snapshot()
	return st
}

// Close syncs and closes the log (degraded engines skip the sync — the
// state past the last acknowledged commit is untrusted either way).
// Further appends fail with ErrClosed; checkpoint attempts become no-ops.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	return e.log.close()
}
