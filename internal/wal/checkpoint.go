package wal

// Checkpoint files. A checkpoint is a complete image of one immutable
// snapshot whose delta overlay is empty: the graph, the frozen index store
// (primary config + CSRs + secondary descriptors), and the record sequence
// number it covers. Files are named checkpoint-<epoch> (zero-padded so
// lexicographic order is epoch order), written via temp-file + fsync +
// rename, and carry a whole-file CRC-32C so a damaged image is detected at
// load and quarantined rather than trusted.

import (
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/aplusdb/aplus/internal/enc"
	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/storage"
	"github.com/aplusdb/aplus/internal/vfs"
)

const (
	ckptPrefix  = "checkpoint-"
	ckptMagic   = 0x41504C43 // "APLC"
	ckptVersion = 1
)

// ckptInfo identifies one on-disk checkpoint file.
type ckptInfo struct {
	name  string
	epoch uint64
	seq   uint64 // filled once the file has been read
	bytes int64
}

func ckptName(epoch uint64) string { return fmt.Sprintf("%s%016d", ckptPrefix, epoch) }

// listCheckpoints returns the checkpoint files in dir, newest epoch first.
// Quarantined (.corrupt) and temp files are ignored.
func listCheckpoints(fs vfs.FS, dir string) ([]ckptInfo, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []ckptInfo
	for _, name := range names {
		if !strings.HasPrefix(name, ckptPrefix) || strings.Contains(name, ".") {
			continue
		}
		epoch, err := strconv.ParseUint(strings.TrimPrefix(name, ckptPrefix), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, ckptInfo{name: name, epoch: epoch})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].epoch > out[j].epoch })
	return out, nil
}

// encodeCheckpoint serializes a snapshot image (graph + store) with header
// and trailing CRC.
func encodeCheckpoint(seq, epoch uint64, g *storage.Graph, st *index.Store) []byte {
	w := enc.NewWriter()
	w.U32(ckptMagic)
	w.U8(ckptVersion)
	w.Uvarint(seq)
	w.Uvarint(epoch)
	storage.EncodeGraph(w, g)
	index.EncodeStore(w, st)
	// Appending the CRC to the writer's own buffer avoids copying the
	// whole image (the dominant allocation of a checkpoint) a second time.
	w.U32(crc32.Checksum(w.Bytes(), castagnoli))
	return w.Bytes()
}

// loadCheckpoint reads and fully validates one checkpoint file. damaged
// distinguishes a file whose *content* is bad (short, checksum or decode
// failure — quarantine it and fall back) from a transient read error
// (permissions, I/O): quarantining on the latter would hide a perfectly
// good image forever, so such errors must propagate instead.
func loadCheckpoint(fs vfs.FS, path string) (g *storage.Graph, st *index.Store, seq, epoch uint64, damaged bool, err error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, nil, 0, 0, false, err
	}
	if len(data) < 4 {
		return nil, nil, 0, 0, true, fmt.Errorf("wal: checkpoint %s too short", path)
	}
	payload := data[:len(data)-4]
	sum := uint32(data[len(data)-4]) | uint32(data[len(data)-3])<<8 |
		uint32(data[len(data)-2])<<16 | uint32(data[len(data)-1])<<24
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, nil, 0, 0, true, fmt.Errorf("wal: checkpoint %s fails its checksum", path)
	}
	r := enc.NewReader(payload)
	if r.U32() != ckptMagic {
		return nil, nil, 0, 0, true, fmt.Errorf("wal: checkpoint %s has wrong magic", path)
	}
	if v := r.U8(); v != ckptVersion {
		return nil, nil, 0, 0, true, fmt.Errorf("wal: checkpoint %s has unsupported version %d", path, v)
	}
	seq = r.Uvarint()
	epoch = r.Uvarint()
	g, err = storage.DecodeGraph(r)
	if err != nil {
		return nil, nil, 0, 0, true, fmt.Errorf("wal: checkpoint %s: %w", path, err)
	}
	st, err = index.DecodeStore(r, g)
	if err != nil {
		return nil, nil, 0, 0, true, fmt.Errorf("wal: checkpoint %s: %w", path, err)
	}
	if r.Rest() != 0 {
		return nil, nil, 0, 0, true, fmt.Errorf("wal: checkpoint %s has %d trailing bytes", path, r.Rest())
	}
	return g, st, seq, epoch, false, nil
}

// quarantine renames a corrupt checkpoint aside so it is never retried but
// remains available for inspection, and (in fsync mode) makes the rename
// durable so the file cannot reappear under its original name after a
// crash. The error is the caller's to surface — swallowing it would hide
// that the corrupt file will be re-detected on every open.
func quarantine(fs vfs.FS, dir, name string, fsync bool) error {
	if err := fs.Rename(filepath.Join(dir, name), filepath.Join(dir, name+".corrupt")); err != nil {
		return err
	}
	if fsync {
		return fs.SyncDir(dir)
	}
	return nil
}
