package wal

import (
	"errors"
	"testing"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/snap"
	"github.com/aplusdb/aplus/internal/storage"
	"github.com/aplusdb/aplus/internal/vfs"
)

func testRecord(seq uint64) snap.Record {
	return snap.Record{Seq: seq, Ops: []snap.LoggedOp{
		{Kind: snap.OpAddVertex, Label: "V", V: storage.VertexID(seq)},
	}}
}

// A full disk mid-append must leave a valid prefix: the failed commit is
// invisible, the engine is NOT degraded, and reopening recovers every
// prior commit — whether the process reopens directly or the machine
// crashes first.
func TestAppendENOSPCLeavesValidPrefix(t *testing.T) {
	mem := vfs.NewMem()
	fi := vfs.NewFaulty(mem)
	e, _, err := Open("/db", true, fi)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := e.Append(testRecord(seq)); err != nil {
			t.Fatal(err)
		}
	}
	goodBytes := e.Stats().WALBytes

	// Exhaust the remaining budget so the 4th append's write fails.
	fi.SetWriteBudget(4)
	err = e.Append(testRecord(4))
	if !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	if errors.Is(err, ErrDegraded) {
		t.Fatal("a clean ENOSPC truncate-back must not degrade the engine")
	}
	st := e.Stats()
	if st.Degraded {
		t.Fatalf("degraded after ENOSPC: %+v", st)
	}
	if st.LastWALError == "" {
		t.Fatal("LastWALError not recorded")
	}
	if st.WALBytes != goodBytes {
		t.Fatalf("wal bytes %d after failed append, want %d", st.WALBytes, goodBytes)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Direct reopen: the partial frame was truncated away, the prefix is
	// intact, and — disk space permitting — commits continue.
	e2, rec, err := Open("/db", true, vfs.NewFaulty(mem))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != 3 {
		t.Fatalf("recovered %d records, want 3", len(rec.Tail))
	}
	if err := e2.Append(testRecord(4)); err != nil {
		t.Fatalf("append after space freed: %v", err)
	}
	e2.Close()

	// Machine crash after the ENOSPC: the synced prefix is the same 3
	// records plus the retried 4th (each append fsyncs).
	mem.Crash()
	e3, rec3, err := Open("/db", true, mem)
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	if len(rec3.Tail) != 4 {
		t.Fatalf("recovered %d records after crash, want 4", len(rec3.Tail))
	}
}

// A single failed fsync must poison the engine permanently — even though
// the very next fsync would succeed — because the page cache's state after
// a failed fsync is unknown (fsyncgate). The failing commit and every
// later one report ErrDegraded; a crash+reopen recovers exactly the
// acknowledged commits.
func TestOneShotFsyncFailurePoisonsPermanently(t *testing.T) {
	mem := vfs.NewMem()
	fi := vfs.NewFaulty(mem)
	e, _, err := Open("/db", true, fi)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 2; seq++ {
		if err := e.Append(testRecord(seq)); err != nil {
			t.Fatal(err)
		}
	}

	// The next append issues exactly [write, sync]: fail the sync, once.
	fi.FailAt(fi.OpCount() + 2)
	err = e.Append(testRecord(3))
	if !errors.Is(err, ErrDegraded) || !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("want ErrDegraded wrapping the injected fault, got %v", err)
	}
	st := e.Stats()
	if !st.Degraded || st.DegradedCause == "" {
		t.Fatalf("stats not degraded: %+v", st)
	}

	// The fault was one-shot — a retried fsync would "succeed" — but the
	// engine must refuse to trust it.
	for seq := uint64(3); seq <= 5; seq++ {
		if err := e.Append(testRecord(seq)); !errors.Is(err, ErrDegraded) {
			t.Fatalf("append %d after poison: want ErrDegraded, got %v", seq, err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash and recover: exactly the two acknowledged commits survive.
	mem.Crash()
	e2, rec, err := Open("/db", true, mem)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if len(rec.Tail) != 2 {
		t.Fatalf("recovered %d records, want the 2 acknowledged", len(rec.Tail))
	}
	if rec.Tail[len(rec.Tail)-1].Seq != 2 {
		t.Fatalf("last recovered seq %d, want 2", rec.Tail[len(rec.Tail)-1].Seq)
	}
	st2 := e2.Stats()
	if st2.Degraded {
		t.Fatal("reopen must clear degraded mode")
	}
}

// A checkpoint-path fault is non-fatal: CheckpointSnapshot returns the
// error (for the merger's retry loop), records it in Stats, and appends
// keep working; the retry succeeds once the fault clears.
func TestCheckpointFaultIsNonFatalAndRetries(t *testing.T) {
	mem := vfs.NewMem()
	fi := vfs.NewFaulty(mem)
	dir := "/db"
	m, e := buildDurableManagerFS(t, dir, 8, fi)
	defer m.Close()
	defer e.Close()

	commitEdges(t, m, 5) // below threshold: delta pending, no fold yet

	// Fail the checkpoint temp file's first write, persistently, then
	// trigger the fold (SyncMerge: runs inline, AfterFold included).
	fi.StickyAt(fi.OpCount() + 2) // ckpt ops: [create, write, ...]
	if err := m.Merge(); err != nil {
		t.Fatalf("fold itself must succeed: %v", err)
	}
	if e.Stats().LastCheckpointError == "" {
		t.Fatal("checkpoint fault not recorded in Stats")
	}

	// Appends unaffected.
	commitEdges(t, m, 2)

	// Retry once the disk heals: a fresh temp file has a different path,
	// so the sticky fault does not match, and the checkpoint lands.
	if err := m.Merge(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.LastCheckpointError != "" {
		t.Fatalf("retry did not clear the error: %s", st.LastCheckpointError)
	}
	if st.CheckpointSeq == 0 {
		t.Fatal("no checkpoint written after retry")
	}
}

// buildDurableManagerFS is buildDurableManager over an explicit VFS.
func buildDurableManagerFS(t *testing.T, dir string, threshold int, fs vfs.FS) (*snap.Manager, *Engine) {
	t.Helper()
	e, rec, err := Open(dir, true, fs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Store != nil || len(rec.Tail) > 0 {
		t.Fatal("expected an empty directory")
	}
	m, err := snap.NewManager(storage.NewGraph(), index.DefaultConfig(), snap.Options{
		MergeThreshold: threshold,
		SyncMerge:      true,
		WALAppend:      e.Append,
		AfterFold:      e.CheckpointSnapshot,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetReady()
	return m, e
}
