package wal

// Recovery replay. The WAL tail is re-committed through the ordinary
// snapshot write path, so the recovered in-memory state is produced by
// exactly the code that produced the pre-crash state — bit-identical by
// construction. The engine recognizes replayed records by their sequence
// numbers (already on disk) and skips re-appending them, which makes
// replay idempotent.

import (
	"fmt"

	"github.com/aplusdb/aplus/internal/snap"
	"github.com/aplusdb/aplus/internal/storage"
)

// Replay re-commits tail (in order) against a freshly recovered manager
// and returns the number of replayed operations, each DDL record counting
// as one. The entity ids assigned during replay are validated against the
// recorded ones; any divergence from the pre-crash run is a hard error,
// never silent corruption.
func Replay(m *snap.Manager, tail []snap.Record) (int64, error) {
	var n int64
	for _, r := range tail {
		switch {
		case r.Reconfig != nil:
			if err := m.Reconfigure(*r.Reconfig); err != nil {
				return n, fmt.Errorf("record %d: reconfigure: %w", r.Seq, err)
			}
			n++
		case r.CreateVP != nil:
			if err := m.CreateVertexPartitioned(*r.CreateVP); err != nil {
				return n, fmt.Errorf("record %d: create view %q: %w", r.Seq, r.CreateVP.View.Name, err)
			}
			n++
		case r.CreateEP != nil:
			if err := m.CreateEdgePartitioned(*r.CreateEP); err != nil {
				return n, fmt.Errorf("record %d: create view %q: %w", r.Seq, r.CreateEP.View.Name, err)
			}
			n++
		case r.Drop != "":
			ok, err := m.DropIndex(r.Drop)
			if err != nil {
				return n, fmt.Errorf("record %d: drop %q: %w", r.Seq, r.Drop, err)
			}
			if !ok {
				// The record proves the index existed; its absence means the
				// state diverged from the pre-crash run — and a no-op drop
				// would skip the seq bump, desyncing the manager from the
				// engine so later commits would be silently skipped as
				// "already durable". Fail the recovery like an id mismatch.
				return n, fmt.Errorf("record %d: drop %q: index not present in replayed state", r.Seq, r.Drop)
			}
			n++
		default:
			if err := replayBatch(m, r); err != nil {
				return n, err
			}
			n += int64(len(r.Ops))
		}
	}
	return n, nil
}

func replayBatch(m *snap.Manager, r snap.Record) error {
	sb := m.Begin()
	defer sb.Abort() // no-op after Commit
	for i, op := range r.Ops {
		switch op.Kind {
		case snap.OpAddVertex:
			v, err := sb.AddVertex(op.Label, replayProps(op.Props))
			if err != nil {
				return fmt.Errorf("record %d op %d: add vertex: %w", r.Seq, i, err)
			}
			if v != op.V {
				return fmt.Errorf("record %d op %d: replay assigned vertex %d, log recorded %d", r.Seq, i, v, op.V)
			}
		case snap.OpAddEdge:
			e, err := sb.AddEdge(op.Src, op.Dst, op.Label, replayProps(op.Props))
			if err != nil {
				return fmt.Errorf("record %d op %d: add edge: %w", r.Seq, i, err)
			}
			if e != op.E {
				return fmt.Errorf("record %d op %d: replay assigned edge %d, log recorded %d", r.Seq, i, e, op.E)
			}
		case snap.OpDeleteEdge:
			if err := sb.DeleteEdge(op.E); err != nil {
				return fmt.Errorf("record %d op %d: delete edge: %w", r.Seq, i, err)
			}
		default:
			return fmt.Errorf("record %d op %d: unknown kind %d", r.Seq, i, op.Kind)
		}
	}
	if err := sb.Commit(); err != nil {
		return fmt.Errorf("record %d: commit: %w", r.Seq, err)
	}
	return nil
}

func replayProps(props []snap.PropKV) map[string]storage.Value {
	if len(props) == 0 {
		return nil
	}
	m := make(map[string]storage.Value, len(props))
	for _, kv := range props {
		m[kv.Key] = kv.Val
	}
	return m
}
