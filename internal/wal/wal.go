// Package wal is the durability subsystem: a write-ahead log of commit
// records, checkpoint images of frozen snapshots, and the recovery path
// that stitches the two back into a running database.
//
// The contract mirrors the snapshot architecture it is built on
// (internal/snap): every batch commit and DDL publication hands its record
// to Engine.Append under the writer mutex *before* the in-memory atomic
// swap — a commit is durable if and only if its length-prefixed,
// CRC-framed record is fully on disk (fsync'd by default). When the
// background merger folds the delta into a fresh base, the resulting
// immutable snapshot is serialized to a checkpoint-<epoch> file and the
// WAL prefix covered by the retained checkpoints is truncated. Recovery
// loads the newest valid checkpoint (quarantining corrupt ones and falling
// back to the previous), replays the WAL tail as ordinary commits, and
// tolerates a torn final record by discarding it.
//
// All disk access goes through a vfs.FS (vfs.OS by default), so the same
// code runs under the fault injector (vfs.Faulty) and the crash simulator
// (vfs.Mem). Failure semantics are asymmetric by design:
//
//   - A failed WAL fsync POISONS the log. After fsync fails, the page
//     cache is in an unknown state — the kernel may have dropped the dirty
//     pages while leaving them marked clean — so retrying the fsync and
//     trusting a later success would silently lose the commit (the classic
//     "fsyncgate" bug). The failing commit reports an error wrapping
//     ErrDegraded, every later Append fails fast with ErrDegraded, and no
//     further checkpoint or truncation is taken over the untrusted state.
//     Reads keep serving published snapshots; recovery is a restart.
//   - A failed write (ENOSPC, injected fault) does NOT poison: the log
//     truncates back to the last record boundary, the valid prefix stays
//     durable, and later commits may succeed. Only if that truncation
//     itself fails — the file may carry a mid-file hole — does the log
//     poison.
//   - Checkpoint and truncation failures are non-fatal: they surface
//     through Stats.LastCheckpointError and the caller (the snapshot
//     merger) retries with backoff while the delta overlay keeps serving.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/aplusdb/aplus/internal/obs"
	"github.com/aplusdb/aplus/internal/vfs"
)

// ErrDegraded is reported (wrapped) by every write after the write-ahead
// log has been poisoned by a failed fsync. The database keeps serving
// reads from published snapshots; writes fail fast until the process
// restarts and recovers from the durable prefix.
var ErrDegraded = errors.New("wal: write-ahead log is poisoned; database is in degraded read-only mode")

// castagnoli is the CRC-32C table used for record and checkpoint framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameHeaderSize is the per-record framing overhead: a 4-byte payload
// length followed by a 4-byte CRC-32C of the payload.
const frameHeaderSize = 8

// maxRecordSize bounds a single record's payload. It exists purely to
// reject absurd length fields quickly; real batches are far smaller.
const maxRecordSize = 1 << 30

// appendFrame appends one framed record — the 8-byte header followed by
// the payload — to dst. It is the single definition of the frame layout;
// scanFrames is its inverse.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// log is an append-only file of framed records.
type log struct {
	fs    vfs.FS
	f     vfs.File
	path  string
	size  int64
	fsync bool
	// poison, once set, fails every later append: the on-disk state past
	// size can no longer be trusted (failed fsync, or failed truncate-back
	// after a short write).
	poison error
	// scratch is the reusable frame buffer, so each append is one write.
	scratch []byte
	// fsyncHist, when set by the engine, records each fsync's duration
	// (the log itself stays ignorant of where the histogram lives).
	fsyncHist *obs.Histogram
}

// openLog opens (creating if needed) the log file for appending at size.
// The caller has already scanned the file and truncated any torn tail.
func openLog(fs vfs.FS, path string, size int64, fsync bool) (*log, error) {
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &log{fs: fs, f: f, path: path, size: size, fsync: fsync}, nil
}

// append frames payload and writes it, syncing when the log is in fsync
// mode.
//
// A failed write truncates back to the last record boundary so the file
// never carries a mid-file hole; the log stays healthy and a later append
// may succeed. A failed sync poisons the log permanently — see the
// package comment for why retrying fsync over dirty state is unsound.
func (l *log) append(payload []byte) error {
	if l.poison != nil {
		return l.poison
	}
	if l.f == nil {
		// A truncation closed the handle and the reopen failed; the on-disk
		// prefix is consistent, and the next successful checkpoint's
		// truncation pass reopens the log.
		return fmt.Errorf("wal: log file handle is closed (reopen after truncation failed)")
	}
	l.scratch = appendFrame(l.scratch[:0], payload)
	if _, err := l.f.Write(l.scratch); err != nil {
		if rerr := l.rewind(); rerr != nil {
			l.poison = fmt.Errorf("wal: truncate to record boundary after failed write: %w", rerr)
		}
		return err
	}
	if l.fsync {
		t0 := time.Now()
		err := l.f.Sync()
		if l.fsyncHist != nil {
			l.fsyncHist.RecordSince(t0)
		}
		if err != nil {
			l.poison = fmt.Errorf("wal: fsync failed: %w", err)
			return err
		}
	}
	l.size += int64(len(l.scratch))
	return nil
}

// rewind restores the file length and offset to the last durable record
// boundary after a failed write.
func (l *log) rewind() error {
	if err := l.f.Truncate(l.size); err != nil {
		return err
	}
	if _, err := l.f.Seek(l.size, io.SeekStart); err != nil {
		return err
	}
	return nil
}

func (l *log) sync() error {
	if l.f == nil {
		return nil
	}
	return l.f.Sync()
}

// close syncs (unless poisoned — nothing since the last per-append sync is
// trusted anyway, and fsync over unknown state proves nothing) and closes
// the file.
func (l *log) close() error {
	if l.f == nil {
		return nil
	}
	var err error
	if l.poison == nil {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// scanFrames splits a log image into record payloads, stopping at the
// first frame that is incomplete or fails its checksum. It returns the
// payloads and the byte offset of the valid prefix; everything past it is
// a torn or corrupt tail for the caller to discard. Payload slices alias
// buf.
func scanFrames(buf []byte) (payloads [][]byte, validSize int64) {
	off := int64(0)
	for {
		rest := int64(len(buf)) - off
		if rest < frameHeaderSize {
			return payloads, off
		}
		n := int64(binary.LittleEndian.Uint32(buf[off : off+4]))
		sum := binary.LittleEndian.Uint32(buf[off+4 : off+8])
		if n > maxRecordSize || n > rest-frameHeaderSize {
			return payloads, off
		}
		payload := buf[off+frameHeaderSize : off+frameHeaderSize+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			return payloads, off
		}
		payloads = append(payloads, payload)
		off += frameHeaderSize + n
	}
}

// hasLaterValidFrame reports whether buf contains a complete, CRC-valid
// frame starting at any offset. It distinguishes a torn tail (the crashed
// write's partial record, nothing valid after it) from mid-log corruption
// (a damaged record with durable records still behind it): discarding the
// former is the recovery contract, discarding the latter would silently
// erase fsync-acknowledged commits.
func hasLaterValidFrame(buf []byte) bool {
	for i := 0; i+frameHeaderSize <= len(buf); i++ {
		n := int64(binary.LittleEndian.Uint32(buf[i : i+4]))
		if n > maxRecordSize || n > int64(len(buf)-i-frameHeaderSize) {
			continue
		}
		sum := binary.LittleEndian.Uint32(buf[i+4 : i+8])
		payload := buf[i+frameHeaderSize : i+frameHeaderSize+int(n)]
		if crc32.Checksum(payload, castagnoli) == sum {
			return true
		}
	}
	return false
}

// writeFileAtomic writes data to path via a same-directory temp file with
// fsync-then-rename, and syncs the directory, so a crash leaves either the
// old file or the complete new one.
func writeFileAtomic(fs vfs.FS, dir, name string, data []byte, fsync bool) error {
	tmp, tmpName, err := fs.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		tmp.Close()
		fs.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if fsync {
		if err := tmp.Sync(); err != nil {
			return cleanup(err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: close %s: %w", tmpName, err)
	}
	if err := fs.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		fs.Remove(tmpName)
		return err
	}
	if fsync {
		return fs.SyncDir(dir)
	}
	return nil
}
