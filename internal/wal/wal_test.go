package wal

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/snap"
	"github.com/aplusdb/aplus/internal/storage"
	"github.com/aplusdb/aplus/internal/vfs"
)

func TestRecordCodecRoundTrip(t *testing.T) {
	cfg := index.Config{
		Partitions: []index.PartitionKey{{Var: pred.VarAdj, Prop: pred.PropLabel}},
		Sorts:      []index.SortKey{{Var: pred.VarAdj, Prop: "amt"}},
	}
	vp := index.VPDef{
		View: index.View1Hop{Name: "V", Pred: pred.Predicate{}.
			And(pred.ConstTerm(pred.VarAdj, "currency", pred.EQ, storage.Str("EUR")))},
		Dirs: []index.Direction{index.FW, index.BW},
		Cfg:  index.DefaultConfig(),
	}
	ep := index.EPDef{
		View: index.View2Hop{Name: "E", Dir: index.SourceBW, Pred: pred.Predicate{}.
			And(pred.VarTermShift(pred.VarBound, "amt", pred.LT, pred.VarAdj, "amt", 3))},
		Cfg: index.DefaultConfig(),
	}
	recs := []snap.Record{
		{Seq: 1, Ops: []snap.LoggedOp{
			{Kind: snap.OpAddVertex, Label: "Account", V: 7, Props: []snap.PropKV{
				{Key: "city", Val: storage.Str("SF")},
				{Key: "vip", Val: storage.Bool(true)},
			}},
			{Kind: snap.OpAddEdge, Label: "W", Src: 7, Dst: 3, E: 42, Props: []snap.PropKV{
				{Key: "amt", Val: storage.Float(1.5)},
			}},
			{Kind: snap.OpDeleteEdge, E: 41},
		}},
		{Seq: 2, Ops: nil}, // empty batch record (vertex-only batches may log no edges but never this; still must roundtrip)
		{Seq: 3, Reconfig: &cfg},
		{Seq: 4, CreateVP: &vp},
		{Seq: 5, CreateEP: &ep},
		{Seq: 6, Drop: "V"},
	}
	for _, rec := range recs {
		got, err := decodeRecord(encodeRecord(rec))
		if err != nil {
			t.Fatalf("record %d: %v", rec.Seq, err)
		}
		if got.Seq != rec.Seq || len(got.Ops) != len(rec.Ops) || got.Drop != rec.Drop ||
			(got.Reconfig == nil) != (rec.Reconfig == nil) ||
			(got.CreateVP == nil) != (rec.CreateVP == nil) ||
			(got.CreateEP == nil) != (rec.CreateEP == nil) {
			t.Fatalf("record %d shape mismatch: %+v", rec.Seq, got)
		}
		for i, op := range rec.Ops {
			g := got.Ops[i]
			if g.Kind != op.Kind || g.Label != op.Label || g.V != op.V ||
				g.Src != op.Src || g.Dst != op.Dst || g.E != op.E || len(g.Props) != len(op.Props) {
				t.Fatalf("record %d op %d mismatch: %+v vs %+v", rec.Seq, i, g, op)
			}
			for j, kv := range op.Props {
				if g.Props[j].Key != kv.Key || g.Props[j].Val.Compare(kv.Val) != 0 {
					t.Fatalf("record %d op %d prop %d mismatch", rec.Seq, i, j)
				}
			}
		}
		if rec.Reconfig != nil && got.Reconfig.String() != rec.Reconfig.String() {
			t.Fatalf("reconfig mismatch: %v vs %v", got.Reconfig, rec.Reconfig)
		}
		if rec.CreateVP != nil && got.CreateVP.View.Pred.String() != rec.CreateVP.View.Pred.String() {
			t.Fatal("vp predicate mismatch")
		}
		if rec.CreateEP != nil && got.CreateEP.View.Dir != rec.CreateEP.View.Dir {
			t.Fatal("ep direction mismatch")
		}
	}
}

// appendRecords opens an engine in dir and appends n single-op batch
// records with sequence numbers start+1..start+n.
func appendRecords(t *testing.T, dir string, start uint64, n int) {
	t.Helper()
	e, _, err := Open(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < n; i++ {
		rec := snap.Record{Seq: start + uint64(i) + 1, Ops: []snap.LoggedOp{
			{Kind: snap.OpAddVertex, Label: "V", V: storage.VertexID(i)},
		}}
		if err := e.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEngineAppendAndReopen(t *testing.T) {
	dir := t.TempDir()
	appendRecords(t, dir, 0, 5)

	e, rec, err := Open(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if rec.Store != nil || rec.Seq != 0 {
		t.Fatal("no checkpoint expected")
	}
	if len(rec.Tail) != 5 {
		t.Fatalf("tail %d records, want 5", len(rec.Tail))
	}
	for i, r := range rec.Tail {
		if r.Seq != uint64(i)+1 {
			t.Fatalf("tail record %d has seq %d", i, r.Seq)
		}
	}
	// Idempotent replay: re-appending on-disk records is a no-op.
	before := e.Stats().WALBytes
	if err := e.Append(rec.Tail[2]); err != nil {
		t.Fatal(err)
	}
	if e.Stats().WALBytes != before {
		t.Fatal("replayed append grew the log")
	}
	// A gap is rejected.
	if err := e.Append(snap.Record{Seq: 9}); err == nil {
		t.Fatal("gap accepted")
	}
}

func TestEngineTornTailSweep(t *testing.T) {
	dir := t.TempDir()
	appendRecords(t, dir, 0, 3)
	walPath := filepath.Join(dir, WALFile)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	payloads, _ := scanFrames(full)
	if len(payloads) != 3 {
		t.Fatalf("expected 3 records, got %d", len(payloads))
	}
	rec2End := int64(len(full)) - frameHeaderSize - int64(len(payloads[2]))

	// Truncate at every byte offset inside the final record: recovery must
	// keep exactly the first two records and discard the torn tail.
	for cut := rec2End; cut < int64(len(full)); cut++ {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, WALFile), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		e, rec, err := Open(sub, true, nil)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(rec.Tail) != 2 {
			t.Fatalf("cut %d: tail %d records, want 2", cut, len(rec.Tail))
		}
		// The torn bytes are gone from disk and appends continue at seq 3.
		if got := e.Stats().WALBytes; got != rec2End {
			t.Fatalf("cut %d: wal bytes %d, want %d", cut, got, rec2End)
		}
		if err := e.Append(snap.Record{Seq: 3, Ops: []snap.LoggedOp{{Kind: snap.OpDeleteEdge, E: 1}}}); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		e.Close()
	}

	// Flipping a byte inside an interior record is mid-log corruption of an
	// fsync-acknowledged commit with durable records after it: Open must
	// fail loudly instead of silently truncating the valid suffix away.
	bad := append([]byte(nil), full...)
	bad[frameHeaderSize+1] ^= 0xFF
	sub := t.TempDir()
	if err := os.WriteFile(filepath.Join(sub, WALFile), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(sub, true, nil); err == nil {
		t.Fatal("mid-log corruption with durable records after it must fail the open")
	}
	// Corrupting the *final* record with no valid frames after it is
	// indistinguishable from a torn write and is discarded.
	bad = append([]byte(nil), full...)
	bad[len(bad)-1] ^= 0xFF
	sub2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(sub2, WALFile), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	e, rec, err := Open(sub2, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if len(rec.Tail) != 2 {
		t.Fatalf("corrupt final record: tail %d, want 2", len(rec.Tail))
	}
}

// buildDurableManager wires a snapshot manager to an engine over an empty
// graph, the way aplus.Open does.
func buildDurableManager(t *testing.T, dir string, threshold int) (*snap.Manager, *Engine) {
	t.Helper()
	e, rec, err := Open(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	var m *snap.Manager
	opts := snap.Options{
		MergeThreshold: threshold,
		SyncMerge:      true,
		WALAppend:      e.Append,
		StartSeq:       rec.Seq,
		StartEpoch:     rec.Epoch,
		AfterFold:      e.CheckpointSnapshot,
	}
	if rec.Store != nil {
		m = snap.NewManagerFromStore(rec.Store, rec.Graph, opts)
	} else {
		var err error
		m, err = snap.NewManager(storage.NewGraph(), index.DefaultConfig(), opts)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Replay the tail through the ordinary commit path.
	for _, r := range rec.Tail {
		switch {
		case r.Reconfig != nil:
			if err := m.Reconfigure(*r.Reconfig); err != nil {
				t.Fatal(err)
			}
		case r.CreateVP != nil:
			if err := m.CreateVertexPartitioned(*r.CreateVP); err != nil {
				t.Fatal(err)
			}
		case r.CreateEP != nil:
			if err := m.CreateEdgePartitioned(*r.CreateEP); err != nil {
				t.Fatal(err)
			}
		case r.Drop != "":
			if _, err := m.DropIndex(r.Drop); err != nil {
				t.Fatal(err)
			}
		default:
			b := m.Begin()
			for _, op := range r.Ops {
				switch op.Kind {
				case snap.OpAddVertex:
					if _, err := b.AddVertex(op.Label, propsMap(op.Props)); err != nil {
						t.Fatal(err)
					}
				case snap.OpAddEdge:
					if _, err := b.AddEdge(op.Src, op.Dst, op.Label, propsMap(op.Props)); err != nil {
						t.Fatal(err)
					}
				case snap.OpDeleteEdge:
					if err := b.DeleteEdge(op.E); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := b.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	e.SetReady()
	return m, e
}

func propsMap(props []snap.PropKV) map[string]storage.Value {
	if len(props) == 0 {
		return nil
	}
	m := make(map[string]storage.Value, len(props))
	for _, kv := range props {
		m[kv.Key] = kv.Val
	}
	return m
}

// commitEdges commits one batch adding n vertices chained by edges.
func commitEdges(t *testing.T, m *snap.Manager, n int) {
	t.Helper()
	b := m.Begin()
	var prev storage.VertexID
	for i := 0; i < n; i++ {
		v, err := b.AddVertex("A", map[string]storage.Value{"i": storage.Int(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if _, err := b.AddEdge(prev, v, "L", nil); err != nil {
				t.Fatal(err)
			}
		}
		prev = v
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
}

func countLiveEdges(m *snap.Manager) int {
	s := m.Acquire()
	defer s.Release()
	return s.Graph().NumLiveEdges() - s.Delta().Deletes()
}

func TestEngineCheckpointTruncateAndFallback(t *testing.T) {
	dir := t.TempDir()
	m, e := buildDurableManager(t, dir, 8)
	// Three batches of 9 edges: each crosses the threshold, so each commit
	// sync-merges and checkpoints.
	for i := 0; i < 3; i++ {
		commitEdges(t, m, 10)
	}
	st := e.Stats()
	if st.CheckpointEpoch == 0 || st.CheckpointSeq == 0 {
		t.Fatalf("no checkpoint written: %+v", st)
	}
	if st.LastCheckpointError != "" {
		t.Fatalf("checkpoint error: %s", st.LastCheckpointError)
	}
	ckpts, err := listCheckpoints(vfs.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) != 2 {
		t.Fatalf("retained %d checkpoints, want 2", len(ckpts))
	}
	wantEdges := countLiveEdges(m)
	m.Close()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean reopen restores the same edge count.
	m2, e2 := buildDurableManager(t, dir, 8)
	if got := countLiveEdges(m2); got != wantEdges {
		t.Fatalf("reopen: %d edges, want %d", got, wantEdges)
	}
	m2.Close()
	e2.Close()

	// Corrupt the newest checkpoint: open must quarantine it, fall back to
	// the previous one, and replay the WAL suffix to the same state.
	ckpts, _ = listCheckpoints(vfs.OS{}, dir)
	newest := filepath.Join(dir, ckpts[0].name)
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m3, e3 := buildDurableManager(t, dir, 8)
	if got := countLiveEdges(m3); got != wantEdges {
		t.Fatalf("fallback reopen: %d edges, want %d", got, wantEdges)
	}
	if _, err := os.Stat(newest + ".corrupt"); err != nil {
		t.Fatalf("corrupt checkpoint not quarantined: %v", err)
	}
	m3.Close()
	e3.Close()

	// Both checkpoints corrupt: recovery falls back to a full WAL replay
	// only if the log still covers everything — here it does not (it was
	// truncated), so Open must fail loudly instead of silently losing data.
	ckpts, _ = listCheckpoints(vfs.OS{}, dir)
	for _, ci := range ckpts {
		p := filepath.Join(dir, ci.name)
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/3] ^= 0xFF
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := Open(dir, true, nil); err == nil {
		t.Fatal("open with no usable checkpoint and a truncated WAL must fail")
	}
}

func TestEngineDDLRecordsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	m, e := buildDurableManager(t, dir, 1<<30)
	commitEdges(t, m, 6)
	if err := m.CreateVertexPartitioned(index.VPDef{
		View: index.View1Hop{Name: "AllFW"},
		Dirs: []index.Direction{index.FW},
		Cfg:  index.DefaultConfig(),
	}); err != nil {
		t.Fatal(err)
	}
	if ok, err := m.DropIndex("AllFW"); !ok || err != nil {
		t.Fatalf("drop: %v %v", ok, err)
	}
	if err := m.CreateVertexPartitioned(index.VPDef{
		View: index.View1Hop{Name: "Kept"},
		Dirs: []index.Direction{index.BW},
		Cfg:  index.DefaultConfig(),
	}); err != nil {
		t.Fatal(err)
	}
	m.Close()
	e.Close()

	m2, e2 := buildDurableManager(t, dir, 1<<30)
	defer e2.Close()
	defer m2.Close()
	s := m2.Acquire()
	defer s.Release()
	if s.Store().HasIndex("AllFW") {
		t.Fatal("dropped index resurrected")
	}
	if !s.Store().HasIndex("Kept") {
		t.Fatal("created index lost")
	}
}
