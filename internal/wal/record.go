package wal

// WAL record payload codec. A record is one snap.Record — a batch's op
// list, or one DDL descriptor — encoded self-describingly: labels and
// properties travel by name, never by catalog or column id, so a record
// can be replayed into any state that structurally precedes it.

import (
	"fmt"

	"github.com/aplusdb/aplus/internal/enc"
	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/snap"
	"github.com/aplusdb/aplus/internal/storage"
)

const (
	recBatch uint8 = iota + 1
	recReconfig
	recCreateVP
	recCreateEP
	recDrop
)

func encodeProps(w *enc.Writer, props []snap.PropKV) {
	w.Uvarint(uint64(len(props)))
	for _, kv := range props {
		w.String(kv.Key)
		storage.EncodeValue(w, kv.Val)
	}
}

func decodeProps(r *enc.Reader) []snap.PropKV {
	n := r.Len(2)
	if n == 0 {
		return nil
	}
	props := make([]snap.PropKV, 0, n)
	for i := 0; i < n; i++ {
		k := r.String()
		props = append(props, snap.PropKV{Key: k, Val: storage.DecodeValue(r)})
	}
	return props
}

// encodeRecord turns a record into a frame payload.
func encodeRecord(rec snap.Record) []byte {
	w := enc.NewWriter()
	w.Uvarint(rec.Seq)
	switch {
	case rec.Reconfig != nil:
		w.U8(recReconfig)
		index.EncodeConfig(w, *rec.Reconfig)
	case rec.CreateVP != nil:
		w.U8(recCreateVP)
		index.EncodeVPDef(w, *rec.CreateVP)
	case rec.CreateEP != nil:
		w.U8(recCreateEP)
		index.EncodeEPDef(w, *rec.CreateEP)
	case rec.Drop != "":
		w.U8(recDrop)
		w.String(rec.Drop)
	default:
		w.U8(recBatch)
		w.Uvarint(uint64(len(rec.Ops)))
		for _, op := range rec.Ops {
			w.U8(uint8(op.Kind))
			switch op.Kind {
			case snap.OpAddVertex:
				w.String(op.Label)
				w.U32(uint32(op.V))
				encodeProps(w, op.Props)
			case snap.OpAddEdge:
				w.String(op.Label)
				w.U32(uint32(op.Src))
				w.U32(uint32(op.Dst))
				w.U64(uint64(op.E))
				encodeProps(w, op.Props)
			case snap.OpDeleteEdge:
				w.U64(uint64(op.E))
			}
		}
	}
	return w.Bytes()
}

// decodeRecord parses a frame payload back into a record.
func decodeRecord(payload []byte) (snap.Record, error) {
	r := enc.NewReader(payload)
	rec := snap.Record{Seq: r.Uvarint()}
	switch kind := r.U8(); kind {
	case recReconfig:
		cfg := index.DecodeConfig(r)
		rec.Reconfig = &cfg
	case recCreateVP:
		def := index.DecodeVPDef(r)
		rec.CreateVP = &def
	case recCreateEP:
		def := index.DecodeEPDef(r)
		rec.CreateEP = &def
	case recDrop:
		rec.Drop = r.String()
		if r.Err() == nil && rec.Drop == "" {
			return rec, fmt.Errorf("wal: drop record without an index name")
		}
	case recBatch:
		n := r.Len(2)
		rec.Ops = make([]snap.LoggedOp, 0, n)
		for i := 0; i < n; i++ {
			op := snap.LoggedOp{Kind: snap.OpKind(r.U8())}
			switch op.Kind {
			case snap.OpAddVertex:
				op.Label = r.String()
				op.V = storage.VertexID(r.U32())
				op.Props = decodeProps(r)
			case snap.OpAddEdge:
				op.Label = r.String()
				op.Src = storage.VertexID(r.U32())
				op.Dst = storage.VertexID(r.U32())
				op.E = storage.EdgeID(r.U64())
				op.Props = decodeProps(r)
			case snap.OpDeleteEdge:
				op.E = storage.EdgeID(r.U64())
			default:
				if r.Err() != nil {
					return rec, r.Err()
				}
				return rec, fmt.Errorf("wal: record %d has unknown op kind %d", rec.Seq, op.Kind)
			}
			rec.Ops = append(rec.Ops, op)
		}
	default:
		if r.Err() != nil {
			return rec, r.Err()
		}
		return rec, fmt.Errorf("wal: unknown record kind %d", kind)
	}
	if r.Err() != nil {
		return rec, r.Err()
	}
	if r.Rest() != 0 {
		return rec, fmt.Errorf("wal: record %d has %d trailing bytes", rec.Seq, r.Rest())
	}
	return rec, nil
}
