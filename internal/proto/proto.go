// Package proto defines the aplusd wire protocol shared by the server and
// the client: a line-oriented TCP protocol where every request is one line
// `<verb> <json>` and every response line is `ok <json>`, `err <json>`, or
// (while a query streams) `row <json>`. Payloads are single-line JSON, so
// the protocol is both trivially framed and debuggable with netcat.
//
// Verbs: open, count, profile, aggregate, query, explain, analyze, exec,
// flush, addv, adde, dele, stats, health, cancel, quit. `cancel` aborts the in-flight query
// on the same connection and never gets a response line of its own (the
// canceled query's final `err` is the acknowledgement); every other verb
// gets exactly one final `ok`/`err`.
//
// Errors carry a machine-readable code that the client maps back onto the
// embedded API's errors.Is-matchable sentinels, so remote callers handle
// cancellation, timeouts, budgets, admission rejections, and degraded mode
// exactly like embedded ones.
package proto

import (
	"errors"
	"fmt"
	"time"

	"github.com/aplusdb/aplus"
	"github.com/aplusdb/aplus/internal/shard"
)

// Error codes carried in ErrMsg.Code.
const (
	CodeCanceled     = "canceled"
	CodeTimeout      = "timeout"
	CodeBudget       = "budget"
	CodeAdmission    = "admission"
	CodePanic        = "panic"
	CodeDegraded     = "degraded"
	CodeDiverged     = "diverged"
	CodeClosed       = "closed"
	CodeBackpressure = "backpressure"
	CodeBadRequest   = "bad_request"
	CodeInternal     = "internal"
)

// ErrBackpressure is the client-side sentinel for CodeBackpressure: the
// server refused a write because the shards' pending-write backlog is over
// its admission threshold.
var ErrBackpressure = fmt.Errorf("aplusd: write rejected by backpressure")

// ErrMsg is the payload of an `err` response.
type ErrMsg struct {
	Code string `json:"code"`
	Msg  string `json:"msg"`
}

// ErrorCode maps an engine error to its wire code (server side).
func ErrorCode(err error) string {
	switch {
	case err == nil:
		return ""
	case isErr(err, aplus.ErrQueryTimeout):
		return CodeTimeout
	case isErr(err, aplus.ErrQueryCanceled):
		return CodeCanceled
	case isErr(err, aplus.ErrBudgetExceeded):
		return CodeBudget
	case isErr(err, aplus.ErrAdmissionRejected):
		return CodeAdmission
	case isErr(err, aplus.ErrQueryPanic):
		return CodePanic
	case isErr(err, shard.ErrClusterDiverged):
		return CodeDiverged
	case isErr(err, aplus.ErrDegraded):
		return CodeDegraded
	case isErr(err, aplus.ErrClosed):
		return CodeClosed
	case isErr(err, ErrBackpressure):
		return CodeBackpressure
	default:
		return CodeInternal
	}
}

// SentinelError reconstructs a client-side error wrapping the matching
// sentinel, so errors.Is works across the wire.
func SentinelError(code, msg string) error {
	var sentinel error
	switch code {
	case CodeTimeout:
		sentinel = aplus.ErrQueryTimeout
	case CodeCanceled:
		sentinel = aplus.ErrQueryCanceled
	case CodeBudget:
		sentinel = aplus.ErrBudgetExceeded
	case CodeAdmission:
		sentinel = aplus.ErrAdmissionRejected
	case CodePanic:
		sentinel = aplus.ErrQueryPanic
	case CodeDiverged:
		sentinel = shard.ErrClusterDiverged
	case CodeDegraded:
		sentinel = aplus.ErrDegraded
	case CodeClosed:
		sentinel = aplus.ErrClosed
	case CodeBackpressure:
		sentinel = ErrBackpressure
	default:
		return fmt.Errorf("aplusd: %s: %s", code, msg)
	}
	return fmt.Errorf("%w: remote: %s", sentinel, msg)
}

func isErr(err, target error) bool { return errors.Is(err, target) }

// Limits is aplus.QueryLimits on the wire (duration in milliseconds so the
// JSON stays human-writable).
type Limits struct {
	MaxICost      int64 `json:"max_icost,omitempty"`
	MaxRows       int64 `json:"max_rows,omitempty"`
	MaxDurationMS int64 `json:"max_duration_ms,omitempty"`
}

// ToQueryLimits converts wire limits to engine limits.
func (l Limits) ToQueryLimits() aplus.QueryLimits {
	return aplus.QueryLimits{
		MaxICost:    l.MaxICost,
		MaxRows:     l.MaxRows,
		MaxDuration: time.Duration(l.MaxDurationMS) * time.Millisecond,
	}
}

// FromQueryLimits converts engine limits to wire limits.
func FromQueryLimits(l aplus.QueryLimits) Limits {
	return Limits{
		MaxICost:      l.MaxICost,
		MaxRows:       l.MaxRows,
		MaxDurationMS: int64(l.MaxDuration / time.Millisecond),
	}
}

// OpenResp answers `open` (the handshake): what the server is serving.
type OpenResp struct {
	Shards int `json:"shards"`
}

// CountReq asks for a match count (`count`, or `profile` to also merge
// metrics).
type CountReq struct {
	Q      string `json:"q"`
	Limits Limits `json:"limits,omitempty"`
}

// CountResp carries the summed count and (for `profile`) merged metrics.
type CountResp struct {
	N         int64   `json:"n"`
	ICost     int64   `json:"icost,omitempty"`
	PredEvals int64   `json:"pred_evals,omitempty"`
	EstICost  float64 `json:"est_icost,omitempty"`
}

// AggregateReq asks for a cluster-merged aggregate (`aggregate`): Func is
// count/sum/min/max; Var and Prop name the aggregated vertex variable and
// its integer property (ignored for count).
type AggregateReq struct {
	Q      string `json:"q"`
	Func   string `json:"func"`
	Var    string `json:"var,omitempty"`
	Prop   string `json:"prop,omitempty"`
	Limits Limits `json:"limits,omitempty"`
}

// AggregateResp carries the exactly merged aggregate plus profiled metrics.
type AggregateResp struct {
	Rows      int64   `json:"rows"`
	Value     int64   `json:"value"`
	Valid     bool    `json:"valid"`
	ICost     int64   `json:"icost,omitempty"`
	PredEvals int64   `json:"pred_evals,omitempty"`
	EstICost  float64 `json:"est_icost,omitempty"`
}

// QueryReq streams matching rows. MaxRows caps the stream (0 = server
// default): the server stops the query cleanly after that many rows and
// sets Truncated — distinct from the Limits.MaxRows budget, which errors.
type QueryReq struct {
	Q       string `json:"q"`
	Limits  Limits `json:"limits,omitempty"`
	MaxRows int64  `json:"cap,omitempty"`
}

// Row is one streamed match: variable name to matched entity ID.
type Row struct {
	V map[string]aplus.VertexID `json:"v"`
	E map[string]aplus.EdgeID   `json:"e,omitempty"`
}

// QueryDone is the final `ok` payload of a query stream.
type QueryDone struct {
	Rows      int64 `json:"rows"`
	Truncated bool  `json:"truncated,omitempty"`
}

// ExplainReq/ExplainResp render a plan.
type ExplainReq struct {
	Q string `json:"q"`
}

type ExplainResp struct {
	Plan string `json:"plan"`
}

// AnalyzeReq runs the query for real with per-operator tracing
// (EXPLAIN ANALYZE) across all shards.
type AnalyzeReq struct {
	Q      string `json:"q"`
	Limits Limits `json:"limits,omitempty"`
}

// AnalyzeResp carries the cluster-merged trace: span sums are bit-identical
// to what `profile` reports for the same query.
type AnalyzeResp struct {
	Trace aplus.QueryTrace `json:"trace"`
}

// ExecReq broadcasts an index DDL.
type ExecReq struct {
	DDL string `json:"ddl"`
}

// Prop is one typed property value; exactly one of S/I/F/B is set. A typed
// union instead of map[string]any keeps int properties ints across the
// JSON round-trip (plain any would coerce them to float64).
type Prop struct {
	K string   `json:"k"`
	S *string  `json:"s,omitempty"`
	I *int64   `json:"i,omitempty"`
	F *float64 `json:"f,omitempty"`
	B *bool    `json:"b,omitempty"`
}

// ToProps converts wire props to engine props.
func ToProps(ps []Prop) aplus.Props {
	if len(ps) == 0 {
		return nil
	}
	m := make(aplus.Props, len(ps))
	for _, p := range ps {
		switch {
		case p.S != nil:
			m[p.K] = *p.S
		case p.I != nil:
			m[p.K] = *p.I
		case p.F != nil:
			m[p.K] = *p.F
		case p.B != nil:
			m[p.K] = *p.B
		default:
			m[p.K] = nil
		}
	}
	return m
}

// FromProps converts engine props to wire props.
func FromProps(props aplus.Props) ([]Prop, error) {
	if len(props) == 0 {
		return nil, nil
	}
	ps := make([]Prop, 0, len(props))
	for k, v := range props {
		p := Prop{K: k}
		switch x := v.(type) {
		case nil:
		case string:
			p.S = &x
		case int:
			i := int64(x)
			p.I = &i
		case int64:
			p.I = &x
		case float64:
			p.F = &x
		case bool:
			p.B = &x
		default:
			return nil, fmt.Errorf("unsupported property type %T", v)
		}
		ps = append(ps, p)
	}
	return ps, nil
}

// AddVertexReq/AddEdgeReq/DeleteEdgeReq are the write verbs.
type AddVertexReq struct {
	Label string `json:"label"`
	Props []Prop `json:"props,omitempty"`
}

type AddVertexResp struct {
	ID aplus.VertexID `json:"id"`
}

type AddEdgeReq struct {
	Src   aplus.VertexID `json:"src"`
	Dst   aplus.VertexID `json:"dst"`
	Label string         `json:"label"`
	Props []Prop         `json:"props,omitempty"`
}

type AddEdgeResp struct {
	ID aplus.EdgeID `json:"id"`
}

type DeleteEdgeReq struct {
	ID aplus.EdgeID `json:"id"`
}

// StatsResp answers `stats`: the aggregate plus every shard's own stats
// (what aplusshell's :shards renders).
type StatsResp struct {
	Shards        int           `json:"shards"`
	Diverged      bool          `json:"diverged,omitempty"`
	DivergedCause string        `json:"diverged_cause,omitempty"`
	Aggregate     aplus.Stats   `json:"aggregate"`
	PerShard      []aplus.Stats `json:"per_shard"`
}

// HealthResp answers `health` with the signals an LB would gate on.
type HealthResp struct {
	OK              bool  `json:"ok"`
	Degraded        bool  `json:"degraded,omitempty"`
	Diverged        bool  `json:"diverged,omitempty"`
	QueriesInFlight int64 `json:"queries_in_flight"`
	PendingWrites   int   `json:"pending_writes"`
}
