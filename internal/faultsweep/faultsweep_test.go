package faultsweep

import (
	"bytes"
	"strings"
	"testing"

	"github.com/aplusdb/aplus/internal/harness"
)

// The full sweep: every disk-op site of the reference workload gets a
// crash pass and a fault pass; FaultSweep panics on any violated
// invariant, so completing is the assertion.
func TestFaultSweepAllSites(t *testing.T) {
	var out bytes.Buffer
	rows := FaultSweep(harness.Options{Out: &out})
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want crash+fault", len(rows))
	}
	for _, r := range rows {
		if r.Count <= 0 {
			t.Fatalf("%s pass tested no sites", r.Config)
		}
	}
	if s := out.String(); strings.Contains(s, "VIOLATION") {
		t.Fatalf("violations reported:\n%s", s)
	}
}

// A bounded run (the CI smoke configuration) samples sites evenly and says
// what it skipped.
func TestFaultSweepBounded(t *testing.T) {
	var out bytes.Buffer
	rows := FaultSweep(harness.Options{Out: &out, FaultSites: 7})
	if rows[0].Count != 7 {
		t.Fatalf("tested %d sites, want 7", rows[0].Count)
	}
	if !strings.Contains(out.String(), "sampling evenly") {
		t.Fatalf("bounded sweep did not report sampling:\n%s", out.String())
	}
}

func TestSweepSites(t *testing.T) {
	all := sweepSites(5, 0)
	if len(all) != 5 || all[0] != 1 || all[4] != 5 {
		t.Fatalf("unbounded sites = %v", all)
	}
	some := sweepSites(100, 4)
	if len(some) != 4 {
		t.Fatalf("bounded sites = %v, want 4", some)
	}
	for i := 1; i < len(some); i++ {
		if some[i] <= some[i-1] {
			t.Fatalf("sites not increasing: %v", some)
		}
	}
	if got := sweepSites(3, 10); len(got) != 3 {
		t.Fatalf("budget past n must test all: %v", got)
	}
}
