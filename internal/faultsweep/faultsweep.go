// Package faultsweep is the crash/fault-injection harness for the
// durability stack: it enumerates every disk operation a scripted
// reference workload performs and re-runs the workload with a crash or a
// one-shot fault injected at each site, asserting the recovery and
// degraded-mode contracts hold everywhere. It lives outside
// internal/harness because it drives the public aplus API end to end
// (OpenOptions.VFS, ErrDegraded, Stats), which harness — imported by the
// root package's own tests — cannot.
package faultsweep

import (
	"errors"
	"fmt"
	"io"
	"time"

	aplus "github.com/aplusdb/aplus"
	"github.com/aplusdb/aplus/internal/harness"
	"github.com/aplusdb/aplus/internal/vfs"
	"github.com/aplusdb/aplus/internal/wal"
)

// FaultSweep exhaustively tests the durability stack's failure contract.
// It runs a scripted reference workload — commits, folds, checkpoints, WAL
// truncations, a close — once fault-free over the crash-simulating
// in-memory filesystem to enumerate every disk operation it performs, then
// re-runs it once per operation site k with
//
//   - a CRASH at k: every op from k on fails, the machine then loses all
//     unsynced state, and the reopen must recover counts and i-cost
//     bit-identical to the last acknowledged commit — never a torn state,
//     never a lost acknowledged one; and
//   - a one-shot FAULT at k (torn to a 3-byte prefix when k is a write):
//     the run must enter degraded read-only mode exactly when the failing
//     op is a commit's WAL fsync (the fsyncgate contract), folds and
//     checkpoints must stay non-fatal, reads must keep serving throughout,
//     and both a process restart and a subsequent machine crash must
//     recover a scripted state no older than the last acknowledged commit.
//
// Options.FaultSites bounds how many sites are tested (0 = all), sampling
// evenly across the trace and reporting what was skipped. Any violated
// invariant is printed and the sweep panics after covering every site.
func FaultSweep(o harness.Options) []harness.Row {
	w := io.Writer(io.Discard)
	if o.Out != nil {
		w = o.Out
	}
	start := time.Now()

	states, stepEnd, trace := sweepTrace()
	n := int64(len(trace))
	sites := sweepSites(n, o.FaultSites)
	fmt.Fprintf(w, "\n=== %s ===\n", fmt.Sprintf("Fault sweep: %d disk ops recorded, %d reference states, testing %d sites x {crash, fault}",
		n, len(states), len(sites)))
	if int64(len(sites)) < n {
		fmt.Fprintf(w, "site budget %d < %d ops: sampling evenly, %d sites skipped\n",
			o.FaultSites, n, n-int64(len(sites)))
	}

	steps := sweepSteps()
	// stepEnd[0] is the op count when Open returned; stepEnd[1+i] when
	// steps[i] finished; the final entry when Close finished.
	openEnd := stepEnd[0]
	lastCommitEnd := int64(0)
	for i, st := range steps {
		if st.commit {
			lastCommitEnd = stepEnd[1+i]
		}
	}
	inCommitStep := func(k int64) bool {
		for i := range steps {
			if k > stepEnd[i] && k <= stepEnd[1+i] {
				return steps[i].commit
			}
		}
		return false
	}
	// inTruncWindow reports whether site k lies in a flush step's WAL-
	// truncation window — from the log handle's close (its sync op) through
	// the reopen. A crash there leaves the handle closed, so later commits
	// fail fast with a closed-handle error rather than a poisoned fsync:
	// they must NOT enter degraded mode.
	walPath := sweepDir + "/" + wal.WALFile
	inTruncWindow := func(k int64) bool {
		for i, st := range steps {
			if st.commit || k <= stepEnd[i] || k > stepEnd[1+i] {
				continue
			}
			lo, hi := int64(-1), int64(-1)
			for j := stepEnd[i]; j < stepEnd[1+i]; j++ {
				if op := trace[j]; op.Path == walPath { // op j is site j+1
					if op.Kind == "sync" && lo < 0 {
						lo = j + 1
					}
					if op.Kind == "open" {
						hi = j + 1
					}
				}
			}
			return lo >= 0 && hi >= lo && k >= lo && k <= hi
		}
		return false
	}

	violations := 0
	for _, k := range sites {
		fail := func(pass, format string, args ...any) {
			violations++
			fmt.Fprintf(w, "VIOLATION site %d/%d %s (%s %s): %s\n",
				k, n, pass, trace[k-1].Kind, trace[k-1].Path, fmt.Sprintf(format, args...))
		}

		// Crash pass: op k and everything after it dies, then the machine
		// loses all unsynced state.
		mem := vfs.NewMem()
		f := vfs.NewFaulty(mem)
		f.CrashAt(k)
		res := runSweepFaulted(f, states, func(format string, args ...any) { fail("crash", format, args...) })
		if res.openOK != (k > openEnd) {
			fail("crash", "open succeeded=%v, want %v", res.openOK, k > openEnd)
		}
		// Degraded exactly when contracted: a crashed disk under any commit
		// poisons the WAL (the append's write or fsync fails and cannot be
		// rewound) — unless the crash already took the log handle down
		// inside a truncation window, where commits fail fast without an
		// fsync ever lying. Crashes confined to open, flushes past the last
		// commit, or close never poison.
		if expect := res.openOK && k <= lastCommitEnd && !inTruncWindow(k); res.degraded != expect {
			fail("crash", "degraded=%v, want %v", res.degraded, expect)
		}
		mem.Crash()
		if st, ok := sweepReopen(mem, func(format string, args ...any) { fail("crash", format, args...) }); ok {
			if st != states[res.acked] {
				fail("crash", "recovered %+v, want the last acknowledged state %+v (%d commits acked)",
					st, states[res.acked], res.acked)
			}
		}
		// Fault pass: op k alone fails (a write tears to a 3-byte prefix);
		// the disk is healthy before and after.
		mem = vfs.NewMem()
		f = vfs.NewFaulty(mem)
		f.FailAt(k)
		if trace[k-1].Kind == "write" {
			f.ShortWrite(3)
		}
		res = runSweepFaulted(f, states, func(format string, args ...any) { fail("fault", format, args...) })
		if res.openOK != (k > openEnd) {
			fail("fault", "open succeeded=%v, want %v", res.openOK, k > openEnd)
		}
		// Degraded exactly when contracted: only a commit's failed WAL fsync
		// poisons (fsyncgate); torn writes rewind cleanly, checkpoint and
		// truncation failures retry, close failures just surface.
		if expect := trace[k-1].Kind == "sync" && inCommitStep(k); res.degraded != expect {
			fail("fault", "degraded=%v, want %v", res.degraded, expect)
		}
		// Process restart over the live (unsynced) filesystem, then a
		// machine crash after that restart synced what it recovered.
		if st, ok := sweepReopen(mem, func(format string, args ...any) { fail("fault", format, args...) }); ok {
			i := findSweepState(states, st)
			switch {
			case i < 0:
				fail("fault", "reopen recovered a torn state %+v", st)
			case i < res.acked || i > res.acked+1:
				fail("fault", "reopen recovered state %d, want %d or %d (at most one in-flight commit)",
					i, res.acked, res.acked+1)
			}
			mem.Crash()
			if st2, ok2 := sweepReopen(mem, func(format string, args ...any) { fail("fault", format, args...) }); ok2 && st2 != st {
				fail("fault", "post-crash reopen %+v diverges from the restart's synced state %+v", st2, st)
			}
		}
	}

	if violations > 0 {
		panic(fmt.Sprintf("fault sweep: %d invariant violations (see output)", violations))
	}
	secs := time.Since(start).Seconds()
	fmt.Fprintf(w, "all invariants held at every site (%.3fs)\n", secs)
	return []harness.Row{
		{Table: "faults", Dataset: "scripted", Config: "crash", Query: "sweep", Seconds: secs / 2, Count: int64(len(sites))},
		{Table: "faults", Dataset: "scripted", Config: "fault", Query: "sweep", Seconds: secs / 2, Count: int64(len(sites))},
	}
}

const (
	sweepDir   = "/db"
	sweepQuery = "MATCH (a:Account)-[:W]->(b:Account)"
)

// sweepState is one reference observation: the count and i-cost of the
// reference query, which must be bit-identical whenever the same logical
// state is served — live, degraded, or recovered.
type sweepState struct {
	Count int64
	ICost int64
}

// sweepOpen opens the scripted database: a huge merge threshold so no
// background fold perturbs the op trace (Flush drives folds explicitly),
// and a retry backoff long enough that failed-checkpoint retries sleep
// until Close interrupts them instead of racing the script.
func sweepOpen(fs vfs.FS) (*aplus.DB, error) {
	return aplus.OpenOptions{
		VFS:            fs,
		MergeThreshold: 1 << 30,
		RetryBackoff:   time.Hour,
	}.Open(sweepDir)
}

func sweepStateOf(db *aplus.DB) sweepState {
	n, m, err := db.CountProfiled(sweepQuery)
	if err != nil {
		panic(fmt.Sprintf("fault sweep: reference query failed: %v", err))
	}
	return sweepState{Count: n, ICost: m.ICost}
}

func findSweepState(states []sweepState, got sweepState) int {
	for i, s := range states {
		if s == got {
			return i
		}
	}
	return -1
}

// sweepStep is one scripted action. Commit steps append to the WAL and, on
// success, advance the acknowledged reference state; flush steps drive
// fold -> checkpoint -> truncation and must never be fatal.
type sweepStep struct {
	name   string
	commit bool
	run    func(db *aplus.DB) error
}

// sweepSteps is the reference workload. Every commit leaves a distinct
// live-edge count, so a recovered state maps to exactly one script
// position. The flushes land three checkpoints: the second triggers the
// first WAL truncation, the third retires the oldest checkpoint file.
func sweepSteps() []sweepStep {
	edge := func(b *aplus.Batch, src, dst int) error {
		_, err := b.AddEdge(aplus.VertexID(src), aplus.VertexID(dst), "W", nil)
		return err
	}
	batch := func(name string, fn func(b *aplus.Batch) error) sweepStep {
		return sweepStep{name: name, commit: true, run: func(db *aplus.DB) error {
			return db.Batch(fn)
		}}
	}
	flush := func(name string) sweepStep {
		return sweepStep{name: name, run: func(db *aplus.DB) error { return db.Flush() }}
	}
	return []sweepStep{
		// 6 vertices chained by 5 edges.
		batch("batch-1", func(b *aplus.Batch) error {
			for i := 0; i < 6; i++ {
				if _, err := b.AddVertex("Account", nil); err != nil {
					return err
				}
			}
			for i := 0; i < 5; i++ {
				if err := edge(b, i, i+1); err != nil {
					return err
				}
			}
			return nil
		}),
		// +4 -> 9 live edges.
		batch("batch-2", func(b *aplus.Batch) error {
			for i := 0; i < 4; i++ {
				if err := edge(b, 5, i); err != nil {
					return err
				}
			}
			return nil
		}),
		flush("flush-1"), // first checkpoint
		// +3 -> 12.
		batch("batch-3", func(b *aplus.Batch) error {
			for i := 0; i < 3; i++ {
				if err := edge(b, 4, i); err != nil {
					return err
				}
			}
			return nil
		}),
		flush("flush-2"), // second checkpoint: first WAL truncation
		// +2 -1 -> 13: adds land in the delta, the delete tombstones a
		// folded base edge.
		batch("batch-4", func(b *aplus.Batch) error {
			for i := 0; i < 2; i++ {
				if _, err := b.AddVertex("Account", nil); err != nil {
					return err
				}
			}
			if err := edge(b, 6, 7); err != nil {
				return err
			}
			if err := edge(b, 7, 0); err != nil {
				return err
			}
			return b.DeleteEdge(aplus.EdgeID(0))
		}),
		flush("flush-3"), // third checkpoint: retires the oldest
		// +1 -> 14, left in the WAL tail for recovery to replay.
		batch("batch-5", func(b *aplus.Batch) error {
			return edge(b, 3, 0)
		}),
	}
}

// sweepTrace runs the workload fault-free over a recording injector and
// returns the reference states (index 0 = the empty database, index j = the
// j-th commit), the op count at the end of the open, each step, and the
// close, and the full op trace.
func sweepTrace() (states []sweepState, stepEnd []int64, trace []vfs.Op) {
	f := vfs.NewFaulty(vfs.NewMem())
	f.Record()
	db, err := sweepOpen(f)
	if err != nil {
		panic(fmt.Sprintf("fault sweep: fault-free open failed: %v", err))
	}
	states = append(states, sweepStateOf(db))
	stepEnd = append(stepEnd, f.OpCount())
	for _, st := range sweepSteps() {
		if err := st.run(db); err != nil {
			panic(fmt.Sprintf("fault sweep: fault-free %s failed: %v", st.name, err))
		}
		if st.commit {
			states = append(states, sweepStateOf(db))
		}
		stepEnd = append(stepEnd, f.OpCount())
	}
	if err := db.Close(); err != nil {
		panic(fmt.Sprintf("fault sweep: fault-free close failed: %v", err))
	}
	stepEnd = append(stepEnd, f.OpCount())
	return states, stepEnd, f.Trace()
}

// sweepOutcome is what one faulted run observed.
type sweepOutcome struct {
	openOK   bool
	acked    int // index into the reference states of the last acknowledged commit
	degraded bool
}

// runSweepFaulted runs the workload over fs, tolerating failures the way an
// application would: the first failed commit abandons the rest of the
// script. Along the way it checks the invariants that hold regardless of
// where the fault lands — every acknowledged commit serves a bit-identical
// reference state, flushes are never fatal, a degraded database rejects
// writes fast but keeps serving reads — reporting breaches through fail.
func runSweepFaulted(fs vfs.FS, states []sweepState, fail func(format string, args ...any)) sweepOutcome {
	db, err := sweepOpen(fs)
	if err != nil {
		return sweepOutcome{}
	}
	out := sweepOutcome{openOK: true}
	var firstErr error
	for _, st := range sweepSteps() {
		if firstErr != nil {
			break
		}
		err := st.run(db)
		switch {
		case st.commit && err == nil:
			out.acked++
			if got := sweepStateOf(db); got != states[out.acked] {
				fail("%s acked but serves %+v, want %+v", st.name, got, states[out.acked])
			}
		case st.commit:
			firstErr = err
		case err != nil:
			fail("%s: a fold/checkpoint failure must be non-fatal, got %v", st.name, err)
		}
	}
	out.degraded = errors.Is(firstErr, aplus.ErrDegraded)
	if out.degraded {
		// Fail-fast contract: the poison outlives the (long-cleared) fault.
		if err := db.Batch(func(b *aplus.Batch) error {
			_, err := b.AddVertex("Account", nil)
			return err
		}); !errors.Is(err, aplus.ErrDegraded) {
			fail("write after degraded failure: want ErrDegraded, got %v", err)
		}
		if st := db.Stats(); !st.Degraded || st.DegradedCause == "" {
			fail("degraded commit failure but Stats says %+v", st)
		}
	}
	// Reads serve the last acknowledged state no matter what the disk did.
	if got := sweepStateOf(db); got != states[out.acked] {
		fail("post-run reads serve %+v, want %+v", got, states[out.acked])
	}
	_ = db.Close() // may legitimately fail under injected faults
	return out
}

// sweepReopen reopens the database over the (now healthy) filesystem and
// returns the recovered reference state. A reopen that fails, stays
// degraded, or cannot close is itself an invariant breach: recovery must
// accept any state a crash or fault can leave behind.
func sweepReopen(fs vfs.FS, fail func(format string, args ...any)) (sweepState, bool) {
	db, err := sweepOpen(fs)
	if err != nil {
		fail("reopen rejected the on-disk state: %v", err)
		return sweepState{}, false
	}
	st := sweepStateOf(db)
	if db.Stats().Degraded {
		fail("degraded flag survived a reopen")
	}
	if err := db.Close(); err != nil {
		fail("close after reopen: %v", err)
	}
	return st, true
}

// sweepSites picks the op sites to test: all n when budget is 0 or covers
// them, otherwise budget sites spread evenly across the trace.
func sweepSites(n int64, budget int) []int64 {
	if budget <= 0 || int64(budget) >= n {
		out := make([]int64, 0, n)
		for k := int64(1); k <= n; k++ {
			out = append(out, k)
		}
		return out
	}
	out := make([]int64, 0, budget)
	seen := make(map[int64]bool, budget)
	for i := 0; i < budget; i++ {
		k := (int64(i)*2 + 1) * n / (2 * int64(budget))
		if k < 1 {
			k = 1
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}
