// Package aplus is an embeddable, in-memory graph database engine built
// around A+ indexes: tunable, space-efficient adjacency-list indexes with
// materialized-view support, as described in "A+ Indexes: Tunable and
// Space-Efficient Adjacency Lists in Graph Database Management Systems"
// (ICDE 2021).
//
// The engine stores property graphs, answers an openCypher MATCH/WHERE
// subset with worst-case-optimal join plans, and lets applications tailor
// its adjacency-list indexes to their workload:
//
//   - the primary A+ indexes can be reconfigured with arbitrary nested
//     partitioning and sorting criteria (RECONFIGURE PRIMARY INDEXES …);
//   - secondary vertex-partitioned indexes materialize predicate-filtered
//     1-hop views in byte-packed offset lists (CREATE 1-HOP VIEW …);
//   - secondary edge-partitioned indexes materialize 2-hop views that give
//     constant-time access to the adjacency of an edge (CREATE 2-HOP
//     VIEW …).
//
// A minimal session:
//
//	db := aplus.New()
//	alice, _ := db.AddVertex("Customer", aplus.Props{"name": "Alice"})
//	acct, _ := db.AddVertex("Account", aplus.Props{"city": "SF"})
//	db.AddEdge(alice, acct, "Owns", nil)
//	n, _ := db.Count("MATCH (c:Customer)-[:Owns]->(a:Account) WHERE a.city = 'SF'")
//
// # Parallelism and thread safety
//
// Queries run with morsel-driven intra-query parallelism: the plan's root
// scan is split into fixed-size ID ranges (morsels) dispensed to a pool of
// Parallelism workers, each running the full operator pipeline. Count and
// CountProfiled return bit-identical counts and merged ICost/PredEvals
// metrics regardless of worker count; Query streams the same set of rows
// but in a nondeterministic order when Parallelism != 1.
//
// Concurrent reads (Count, CountProfiled, Query, Explain, Stats,
// VertexProp, EdgeProp) are safe from any number of goroutines. Writes
// (AddVertex, AddEdge, DeleteEdge, Flush, Exec, DropIndex) are serialized
// against reads by a coarse reader/writer lock on the index store and may
// also be issued from multiple goroutines, though the interleaving between
// writes is then unspecified. Advise is a write: it transiently builds and
// drops trial indexes. Never call any DB method from inside a Query
// callback: the callback runs under the store's read lock, and a nested
// acquisition deadlocks once a writer is waiting. To read properties of a
// matched row, use Row.VertexProp/Row.EdgeProp, which piggyback on the
// running query's lock.
package aplus

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/aplusdb/aplus/internal/exec"
	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/opt"
	"github.com/aplusdb/aplus/internal/query"
	"github.com/aplusdb/aplus/internal/storage"
)

// VertexID identifies a vertex.
type VertexID = storage.VertexID

// EdgeID identifies an edge.
type EdgeID = storage.EdgeID

// Props carries property values for loading: int/int64/float64/string/bool.
type Props map[string]any

// PlannerOptions restrict the optimizer's plan space; the zero value is the
// full A+ plan space. They exist for experiments that emulate systems with
// fixed adjacency-list indexes.
type PlannerOptions struct {
	// BinaryJoinsOnly removes multiway intersections (WCOJ) from the plan
	// space, as in Neo4j-class systems.
	BinaryJoinsOnly bool
	// IgnoreSecondaryIndexes hides secondary A+ indexes from the planner.
	IgnoreSecondaryIndexes bool
	// NoSortedSegments forbids binary-searched segment access inside
	// sorted lists.
	NoSortedSegments bool
}

func (p PlannerOptions) mode() opt.Mode {
	return opt.Mode{
		DisableWCOJ:        p.BinaryJoinsOnly,
		DisableSecondary:   p.IgnoreSecondaryIndexes,
		DisableSegments:    p.NoSortedSegments,
		DisableMultiExtend: p.BinaryJoinsOnly,
	}
}

// DB is an in-memory graph database with A+ indexes.
type DB struct {
	g     *storage.Graph
	store *index.Store
	// storeMu guards the store pointer (so the first queries racing on a
	// freshly loaded DB construct the primary indexes exactly once) and,
	// while no store exists yet, direct graph mutations.
	storeMu sync.Mutex

	// Planner controls the optimizer's plan space for subsequent queries.
	Planner PlannerOptions

	// Parallelism is the worker-pool size for query execution: 0 uses
	// runtime.GOMAXPROCS(0), 1 forces the serial path, and any larger
	// value pins the pool size.
	Parallelism int

	// MorselSize overrides the scan-range size handed to each worker
	// (0 = exec.DefaultMorselSize). Exposed for tests and tuning.
	MorselSize int
}

// New returns an empty database with the default index configuration
// (partition by edge label, sort by neighbour ID).
func New() *DB {
	return &DB{g: storage.NewGraph()}
}

// newFromGraph wraps an existing internal graph (used by the generator
// helpers and the experiment harness).
func newFromGraph(g *storage.Graph) *DB { return &DB{g: g} }

// ensureStore builds the primary indexes lazily after loading and returns
// the store.
func (db *DB) ensureStore() (*index.Store, error) {
	db.storeMu.Lock()
	defer db.storeMu.Unlock()
	if db.store != nil {
		return db.store, nil
	}
	s, err := index.NewStore(db.g, index.DefaultConfig())
	if err != nil {
		return nil, err
	}
	db.store = s
	return s, nil
}

// getStore returns the store pointer (nil before the first query or DDL)
// with the happens-before edge the lazy build requires.
func (db *DB) getStore() *index.Store {
	db.storeMu.Lock()
	defer db.storeMu.Unlock()
	return db.store
}

// readLocked runs f holding whichever lock makes graph reads consistent
// with lock-serialized writes: the store's read lock once indexes exist,
// storeMu before then (direct graph writes hold it). f receives the store
// (nil before the first query or DDL).
func (db *DB) readLocked(f func(s *index.Store)) {
	db.storeMu.Lock()
	s := db.store
	if s == nil {
		defer db.storeMu.Unlock()
		f(nil)
		return
	}
	db.storeMu.Unlock()
	s.RLock()
	defer s.RUnlock()
	f(s)
}

// workers resolves the effective worker-pool size.
func (db *DB) workers() int {
	if db.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if db.Parallelism < 1 {
		return 1
	}
	return db.Parallelism
}

func (db *DB) parallelOptions() exec.ParallelOptions {
	return exec.ParallelOptions{Workers: db.workers(), MorselSize: db.MorselSize}
}

// AddVertex appends a vertex. label may be empty.
func (db *DB) AddVertex(label string, props Props) (VertexID, error) {
	db.storeMu.Lock()
	defer db.storeMu.Unlock()
	if db.store != nil {
		// Queries read the vertex table and per-label lists under the
		// store's read lock; vertex appends must exclude them.
		db.store.Lock()
		defer db.store.Unlock()
	}
	v := db.g.AddVertex(label)
	for k, val := range props {
		sv, err := toValue(val)
		if err != nil {
			return v, fmt.Errorf("aplus: property %q: %w", k, err)
		}
		if err := db.g.SetVertexProp(v, k, sv); err != nil {
			return v, err
		}
	}
	return v, nil
}

// AddEdge appends an edge. Before the first query the edge goes straight
// into the graph; afterwards it is routed through index maintenance
// (update buffers merged at a threshold, as in Section IV-C of the paper).
func (db *DB) AddEdge(src, dst VertexID, label string, props Props) (EdgeID, error) {
	vals := make(map[string]storage.Value, len(props))
	for k, val := range props {
		sv, err := toValue(val)
		if err != nil {
			return 0, fmt.Errorf("aplus: property %q: %w", k, err)
		}
		vals[k] = sv
	}
	db.storeMu.Lock()
	if s := db.store; s != nil {
		db.storeMu.Unlock()
		return s.InsertEdge(src, dst, label, vals)
	}
	defer db.storeMu.Unlock()
	e, err := db.g.AddEdge(src, dst, label)
	if err != nil {
		return 0, err
	}
	for k, v := range vals {
		if err := db.g.SetEdgeProp(e, k, v); err != nil {
			return 0, err
		}
	}
	return e, nil
}

// DeleteEdge tombstones an edge; the tombstone is merged out of the
// indexes at the next buffer merge.
func (db *DB) DeleteEdge(e EdgeID) error {
	db.storeMu.Lock()
	if s := db.store; s != nil {
		db.storeMu.Unlock()
		return s.DeleteEdge(e)
	}
	defer db.storeMu.Unlock()
	return db.g.DeleteEdge(e)
}

// Flush merges all pending index update buffers.
func (db *DB) Flush() error {
	if s := db.getStore(); s != nil {
		return s.Flush()
	}
	return nil
}

// Exec runs an index DDL command: RECONFIGURE PRIMARY INDEXES …,
// CREATE 1-HOP VIEW …, or CREATE 2-HOP VIEW ….
func (db *DB) Exec(ddl string) error {
	s, err := db.ensureStore()
	if err != nil {
		return err
	}
	d, err := query.ParseDDL(ddl)
	if err != nil {
		return err
	}
	switch d := d.(type) {
	case query.Reconfigure:
		return s.Reconfigure(d.Cfg)
	case query.Create1Hop:
		_, err := s.CreateVertexPartitioned(d.Def)
		return err
	case query.Create2Hop:
		_, err := s.CreateEdgePartitioned(d.Def)
		return err
	default:
		return fmt.Errorf("aplus: unsupported DDL")
	}
}

// DropIndex removes a secondary index by view name.
func (db *DB) DropIndex(name string) bool {
	if s := db.getStore(); s != nil {
		return s.DropIndex(name)
	}
	return false
}

// Row is one query match: variable name to matched entity ID.
type Row struct {
	db       *DB
	Vertices map[string]VertexID
	Edges    map[string]EdgeID
}

// VertexProp reads a property of a matched vertex. Use it (not
// DB.VertexProp) inside a Query callback: it relies on the read lock the
// running query already holds, where DB.VertexProp's own lock acquisition
// would deadlock against a waiting writer. Do not call it after the
// callback returns.
func (r Row) VertexProp(v VertexID, key string) any {
	return fromValue(r.db.g.VertexProp(v, key))
}

// EdgeProp reads a property of a matched edge; the Query-callback
// counterpart of DB.EdgeProp (see Row.VertexProp).
func (r Row) EdgeProp(e EdgeID, key string) any {
	return fromValue(r.db.g.EdgeProp(e, key))
}

// Metrics reports the work a query execution performed.
type Metrics struct {
	// ICost is the number of adjacency-list entries read (the paper's
	// intersection-cost metric).
	ICost int64
	// PredEvals is the number of per-entry predicate evaluations.
	PredEvals int64
	// EstimatedICost is the optimizer's cost estimate for the chosen plan.
	EstimatedICost float64
}

// Count runs a query and returns the number of matches.
func (db *DB) Count(cypher string) (int64, error) {
	n, _, err := db.CountProfiled(cypher)
	return n, err
}

// CountProfiled runs a query and also reports execution metrics. The count
// and the merged ICost/PredEvals are identical whatever Parallelism is.
func (db *DB) CountProfiled(cypher string) (int64, Metrics, error) {
	s, err := db.ensureStore()
	if err != nil {
		return 0, Metrics{}, err
	}
	s.RLock()
	defer s.RUnlock()
	plan, rt, err := db.planLocked(s, cypher)
	if err != nil {
		return 0, Metrics{}, err
	}
	n := plan.CountParallel(rt, db.parallelOptions())
	return n, Metrics{ICost: rt.ICost, PredEvals: rt.PredEvals, EstimatedICost: plan.EstimatedICost}, nil
}

// Query streams matches to fn; returning false stops early. fn is never
// called concurrently with itself, but with Parallelism != 1 rows arrive in
// a nondeterministic order.
func (db *DB) Query(cypher string, fn func(Row) bool) error {
	s, err := db.ensureStore()
	if err != nil {
		return err
	}
	s.RLock()
	defer s.RUnlock()
	plan, rt, err := db.planLocked(s, cypher)
	if err != nil {
		return err
	}
	plan.ExecuteParallel(rt, db.parallelOptions(), func(b *exec.Binding) bool {
		row := Row{db: db, Vertices: make(map[string]VertexID), Edges: make(map[string]EdgeID)}
		for i, name := range plan.VertexNames {
			row.Vertices[name] = b.V[i]
		}
		for i, name := range plan.EdgeNames {
			row.Edges[name] = b.E[i]
		}
		return fn(row)
	})
	return nil
}

// Explain returns the physical plan chosen for a query.
func (db *DB) Explain(cypher string) (string, error) {
	s, err := db.ensureStore()
	if err != nil {
		return "", err
	}
	s.RLock()
	defer s.RUnlock()
	plan, _, err := db.planLocked(s, cypher)
	if err != nil {
		return "", err
	}
	return plan.Explain(), nil
}

// planLocked parses and optimizes under the store's read lock (the
// optimizer reads index metadata and statistics).
func (db *DB) planLocked(s *index.Store, cypher string) (*exec.Plan, *exec.Runtime, error) {
	q, err := query.Parse(cypher)
	if err != nil {
		return nil, nil, err
	}
	plan, err := opt.Optimize(s, q, db.Planner.mode())
	if err != nil {
		return nil, nil, err
	}
	return plan, exec.NewRuntime(s), nil
}

// VertexProp reads a vertex property (nil when absent).
func (db *DB) VertexProp(v VertexID, key string) any {
	var out any
	db.readLocked(func(*index.Store) { out = fromValue(db.g.VertexProp(v, key)) })
	return out
}

// EdgeProp reads an edge property (nil when absent).
func (db *DB) EdgeProp(e EdgeID, key string) any {
	var out any
	db.readLocked(func(*index.Store) { out = fromValue(db.g.EdgeProp(e, key)) })
	return out
}

// Stats summarizes the database and index footprints.
type Stats struct {
	NumVertices, NumEdges      int
	GraphBytes                 int64
	PrimaryLevelBytes          int64
	PrimaryIDListBytes         int64
	SecondaryIndexBytes        int64
	IndexedEdgesIncludingViews int64
}

// Stats reports sizes; index fields are zero before the first query or DDL.
func (db *DB) Stats() Stats {
	var st Stats
	db.readLocked(func(s *index.Store) {
		st = Stats{
			NumVertices: db.g.NumVertices(),
			NumEdges:    db.g.NumLiveEdges(),
			GraphBytes:  db.g.MemoryBytes(),
		}
		if s != nil {
			is := s.StatsLocked()
			st.PrimaryLevelBytes = is.PrimaryLevels
			st.PrimaryIDListBytes = is.PrimaryIDLists
			st.SecondaryIndexBytes = is.SecondaryBytes
			st.IndexedEdgesIncludingViews = is.IndexedEdges
		}
	})
	return st
}

func toValue(v any) (storage.Value, error) {
	switch x := v.(type) {
	case nil:
		return storage.NullValue, nil
	case int:
		return storage.Int(int64(x)), nil
	case int32:
		return storage.Int(int64(x)), nil
	case int64:
		return storage.Int(x), nil
	case float64:
		return storage.Float(x), nil
	case string:
		return storage.Str(x), nil
	case bool:
		return storage.Bool(x), nil
	default:
		return storage.NullValue, fmt.Errorf("unsupported property type %T", v)
	}
}

func fromValue(v storage.Value) any {
	switch v.Kind {
	case storage.KindInt:
		return v.I
	case storage.KindFloat:
		return v.F
	case storage.KindString:
		return v.S
	case storage.KindBool:
		return v.I != 0
	default:
		return nil
	}
}
