// Package aplus is an embeddable, in-memory graph database engine built
// around A+ indexes: tunable, space-efficient adjacency-list indexes with
// materialized-view support, as described in "A+ Indexes: Tunable and
// Space-Efficient Adjacency Lists in Graph Database Management Systems"
// (ICDE 2021).
//
// The engine stores property graphs, answers an openCypher MATCH/WHERE
// subset with worst-case-optimal join plans, and lets applications tailor
// its adjacency-list indexes to their workload:
//
//   - the primary A+ indexes can be reconfigured with arbitrary nested
//     partitioning and sorting criteria (RECONFIGURE PRIMARY INDEXES …);
//   - secondary vertex-partitioned indexes materialize predicate-filtered
//     1-hop views in byte-packed offset lists (CREATE 1-HOP VIEW …);
//   - secondary edge-partitioned indexes materialize 2-hop views that give
//     constant-time access to the adjacency of an edge (CREATE 2-HOP
//     VIEW …).
//
// A minimal session:
//
//	db := aplus.New()
//	alice, _ := db.AddVertex("Customer", aplus.Props{"name": "Alice"})
//	acct, _ := db.AddVertex("Account", aplus.Props{"city": "SF"})
//	db.AddEdge(alice, acct, "Owns", nil)
//	n, _ := db.Count("MATCH (c:Customer)-[:Owns]->(a:Account) WHERE a.city = 'SF'")
//
// New databases are in-memory and volatile. Open turns a directory into a
// durable database instead: every commit is appended to a write-ahead log
// and fsync'd before it becomes visible, background folds checkpoint the
// frozen base and truncate the log, and reopening the directory recovers
// the exact state of the last durable commit (see Open and DB.Close).
//
// # Parallelism and thread safety
//
// Queries run with morsel-driven intra-query parallelism: the plan's root
// scan is split into fixed-size ID ranges (morsels) dispensed to a pool of
// Parallelism workers, each running the full operator pipeline. Count and
// CountProfiled return bit-identical counts and merged ICost/PredEvals
// metrics regardless of worker count; Query streams the same set of rows
// but in a nondeterministic order when Parallelism != 1.
//
// The database is snapshot-isolated. Every read (Count, CountProfiled,
// Query, Explain, Stats, VertexProp, EdgeProp) pins the current immutable
// snapshot with two atomic operations — there is no lock on the read path
// at all — and observes exactly that state for its whole run. Writes
// (AddVertex, AddEdge, DeleteEdge, and grouped batches via Batch) stage
// their changes on a copy-on-write clone plus a delta overlay and publish
// a new snapshot with one atomic swap: readers never block on writers,
// and writers never wait for in-flight queries to drain. Writers serialize
// against each other; a write becomes visible to reads that start after
// its batch commits. A background merger folds large deltas back into
// block-packed index form off the query path (Flush forces it).
//
// Reads may be issued from anywhere, including from inside a Query
// callback (the nested read pins its own snapshot). Writes issued from
// inside a Query callback fail fast with ErrWriteInQueryCallback — the
// running query could never observe them anyway, since it reads its pinned
// snapshot; stage the changes and apply them after the query returns, e.g.
// in one Batch. Advise counts as a write: it builds and drops trial
// indexes.
package aplus

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aplusdb/aplus/internal/exec"
	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/obs"
	"github.com/aplusdb/aplus/internal/opt"
	"github.com/aplusdb/aplus/internal/plancache"
	"github.com/aplusdb/aplus/internal/query"
	"github.com/aplusdb/aplus/internal/snap"
	"github.com/aplusdb/aplus/internal/storage"
	"github.com/aplusdb/aplus/internal/wal"
)

// VertexID identifies a vertex.
type VertexID = storage.VertexID

// EdgeID identifies an edge.
type EdgeID = storage.EdgeID

// Props carries property values for loading: int/int64/float64/string/bool.
type Props map[string]any

// ShardSpec identifies a database's slot in a K-way hash-partitioned
// cluster: Index in [0, Of). See DB.Shard. Field-compatible with the exec
// layer's spec; the hash is Fibonacci multiplicative on the vertex ID.
type ShardSpec struct {
	Index int
	Of    int
}

// PlannerOptions restrict the optimizer's plan space; the zero value is the
// full A+ plan space. They exist for experiments that emulate systems with
// fixed adjacency-list indexes.
type PlannerOptions struct {
	// BinaryJoinsOnly removes multiway intersections (WCOJ) from the plan
	// space, as in Neo4j-class systems.
	BinaryJoinsOnly bool
	// IgnoreSecondaryIndexes hides secondary A+ indexes from the planner.
	IgnoreSecondaryIndexes bool
	// NoSortedSegments forbids binary-searched segment access inside
	// sorted lists.
	NoSortedSegments bool
}

func (p PlannerOptions) mode() opt.Mode {
	return opt.Mode{
		DisableWCOJ:        p.BinaryJoinsOnly,
		DisableSecondary:   p.IgnoreSecondaryIndexes,
		DisableSegments:    p.NoSortedSegments,
		DisableMultiExtend: p.BinaryJoinsOnly,
	}
}

// ErrWriteInQueryCallback is returned by every write entry point when it is
// invoked from inside a Query callback: the running query reads its pinned
// snapshot and could never observe the write, so the call is almost always
// a bug (and under the pre-snapshot lock-based engine it self-deadlocked).
// Collect the changes and apply them after the query returns, e.g. in one
// Batch.
var ErrWriteInQueryCallback = errors.New(
	"aplus: write issued from inside a Query callback; apply writes after the query returns (e.g. in one DB.Batch)")

// ErrWriteInBatchCallback is returned by every DB-level write entry point
// when it is invoked from inside a Batch callback: the batch already holds
// the writer mutex, so a nested DB write would self-deadlock. Stage the op
// on the *Batch argument instead.
var ErrWriteInBatchCallback = errors.New(
	"aplus: DB write issued from inside a Batch callback; stage the op on the Batch argument instead")

// DB is an in-memory graph database with A+ indexes.
type DB struct {
	// g is the load-phase graph: it is mutated directly (under mu) only
	// until the first query or DDL builds the indexes and publishes the
	// first snapshot; afterwards the graph of record lives in snapshots.
	g *storage.Graph
	// mgr owns the snapshot chain once indexes exist; the atomic pointer
	// keeps the read path lock-free.
	mgr atomic.Pointer[snap.Manager]
	// mu guards manager creation and pre-snapshot direct graph writes.
	mu sync.Mutex

	// Planner controls the optimizer's plan space for subsequent queries.
	Planner PlannerOptions

	// Parallelism is the worker-pool size for query execution: 0 uses
	// runtime.GOMAXPROCS(0), 1 forces the serial path, and any larger
	// value pins the pool size.
	Parallelism int

	// MorselSize overrides the scan-range size handed to each worker
	// (0 = exec.DefaultMorselSize). Exposed for tests and tuning.
	MorselSize int

	// MergeThreshold overrides the number of pending delta ops after which
	// a commit schedules a background merge (0 = the engine default). It
	// must be set before the first query or DDL.
	MergeThreshold int

	// Limits are the default per-query resource budgets applied to every
	// read that does not pass explicit limits (zero value = unlimited).
	Limits QueryLimits

	// QueryTimeout is the default deadline applied to every read whose
	// limits carry no MaxDuration (0 = none). Timed-out queries fail with a
	// wrapped ErrQueryTimeout within one morsel of work.
	QueryTimeout time.Duration

	// MaxConcurrentQueries gates how many top-level reads may execute at
	// once (0 = unlimited); excess arrivals queue or fail per
	// AdmissionPolicy. Set it before issuing queries — the gate's capacity
	// is fixed at the first gated read. Nested reads issued from inside a
	// Query callback bypass the gate (the outer query holds a slot).
	MaxConcurrentQueries int

	// AdmissionPolicy picks queue (default) or reject behavior at the
	// MaxConcurrentQueries gate.
	AdmissionPolicy AdmissionPolicy

	// SlowQueryThreshold, when positive, counts every read at least this
	// slow in Stats().SlowQueries, captures it as Stats().LastSlowQuery,
	// and logs it to SlowQueryLog when one is set.
	SlowQueryThreshold time.Duration

	// SlowQueryLog, when set alongside a positive SlowQueryThreshold,
	// receives one structured record per slow read: query text, duration,
	// i-cost, rows, governance outcome, and the physical plan. The plan is
	// rendered only for slow queries, never on the fast path.
	SlowQueryLog *slog.Logger

	// Shard, when Of > 1, marks this database as one full replica in a
	// K-way hash-partitioned cluster and restricts every query's root scan
	// to the vertices (or, for edge-rooted plans, edge sources) it owns.
	// The serving layer (internal/shard) sets it so per-shard counts,
	// i-cost, and PredEvals sum bit-identically to an unsharded run; the
	// zero value disables filtering. Set it before issuing queries.
	Shard ShardSpec

	// PlanCacheSize caps the compiled-plan cache shared by every read
	// (0 = DefaultPlanCacheSize, negative disables caching). The cache is
	// keyed on whitespace-normalized query text plus planner mode and
	// invalidated whenever a fold or DDL publishes a new index store, so a
	// hit is always exactly the plan a fresh compile would produce. Set it
	// before issuing queries; effectiveness counters surface in Stats.
	PlanCacheSize int

	// planOnce lazily sizes the plan cache at the first read; planCache is
	// nil when caching is disabled.
	planOnce  sync.Once
	planCache *plancache.Cache[planKey, *exec.Plan]

	// activeQueries counts Query calls in flight and cbGoroutines marks the
	// goroutines currently allowed to run their callbacks; activeBatches
	// and batchGoroutines do the same for Batch callbacks (which hold the
	// writer mutex). Both let writes from inside a callback fail fast
	// instead of misbehaving or self-deadlocking.
	activeQueries   atomic.Int64
	cbGoroutines    sync.Map // goroutine id -> *atomic.Int64 nesting count
	activeBatches   atomic.Int64
	batchGoroutines sync.Map // goroutine id -> *atomic.Int64 nesting count

	// Governance state (see governance.go): the lazily created admission
	// semaphore and the observability counters surfaced through Stats.
	admitCh         chan struct{} // guarded by mu until created
	queriesInFlight atomic.Int64
	queriesRejected atomic.Int64
	queriesCanceled atomic.Int64
	queriesTimedOut atomic.Int64
	slowQueries     atomic.Int64
	queriesPanicked atomic.Int64
	lastQueryPanic  atomic.Pointer[string]

	// Latency histograms (lock-free, log-bucketed; see internal/obs) and
	// the most recent slow-query capture, surfaced through Stats.
	queryLatency  obs.Histogram
	admissionWait obs.Histogram
	lastSlowQuery atomic.Pointer[SlowQuery]

	// injectWorkerFault, when set by tests, is plumbed into every query's
	// ParallelOptions to inject a panic into a live worker goroutine.
	injectWorkerFault func(worker int)

	// eng is the durability engine for databases created with Open (nil
	// for in-memory databases); replayedOps counts the WAL operations Open
	// replayed during recovery, and closed gates every entry point after
	// Close.
	eng         *wal.Engine
	replayedOps int64
	closed      atomic.Bool
}

// New returns an empty database with the default index configuration
// (partition by edge label, sort by neighbour ID).
func New() *DB {
	return &DB{g: storage.NewGraph()}
}

// newFromGraph wraps an existing internal graph (used by the generator
// helpers and the experiment harness).
func newFromGraph(g *storage.Graph) *DB { return &DB{g: g} }

// ensureManager builds the primary indexes and publishes the first
// snapshot on first use. The load-phase graph is frozen from then on.
func (db *DB) ensureManager() (*snap.Manager, error) {
	if m := db.mgr.Load(); m != nil {
		return m, nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if m := db.mgr.Load(); m != nil {
		return m, nil
	}
	m, err := snap.NewManager(db.g, index.DefaultConfig(), snap.Options{MergeThreshold: db.MergeThreshold})
	if err != nil {
		return nil, err
	}
	db.mgr.Store(m)
	return m, nil
}

// workers resolves the effective worker-pool size.
func (db *DB) workers() int {
	if db.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if db.Parallelism < 1 {
		return 1
	}
	return db.Parallelism
}

func (db *DB) parallelOptions() exec.ParallelOptions {
	return exec.ParallelOptions{Workers: db.workers(), MorselSize: db.MorselSize}
}

// Batch is a group of writes staged against one snapshot and committed
// atomically: either every op becomes visible in a single snapshot
// publication, or (when the callback errors) none does. Batching is the
// preferred write path under load — one grouped commit amortizes the
// copy-on-write clone across all its ops.
type Batch struct {
	sb *snap.Batch
}

// AddVertex appends a vertex to the batch. label may be empty.
func (b *Batch) AddVertex(label string, props Props) (VertexID, error) {
	vals, err := toValues(props)
	if err != nil {
		return 0, err
	}
	return b.sb.AddVertex(label, vals)
}

// AddEdge appends an edge to the batch. The endpoints may be pre-existing
// vertices or vertices added earlier in the same batch.
func (b *Batch) AddEdge(src, dst VertexID, label string, props Props) (EdgeID, error) {
	vals, err := toValues(props)
	if err != nil {
		return 0, err
	}
	return b.sb.AddEdge(src, dst, label, vals)
}

// DeleteEdge stages an edge deletion in the batch.
func (b *Batch) DeleteEdge(e EdgeID) error { return b.sb.DeleteEdge(e) }

// Batch stages a group of writes and commits them atomically when fn
// returns nil (one snapshot publication for the whole group); when fn
// returns an error, every staged op is discarded and the error is
// returned. Batches serialize against other writes; readers are never
// blocked — queries that started before the commit keep observing their
// pinned snapshot, queries that start afterwards observe all of it.
//
// Inside fn, stage ops only on the *Batch argument: DB-level writes would
// deadlock on the held writer mutex and fail fast with
// ErrWriteInBatchCallback instead. DB-level reads are allowed; they pin
// the current snapshot and therefore do not see the ops staged so far.
func (db *DB) Batch(fn func(*Batch) error) error {
	if err := db.writeGuard(); err != nil {
		return err
	}
	mgr, err := db.ensureManager()
	if err != nil {
		return err
	}
	sb := mgr.Begin()
	// Abort is a no-op after Commit; the defer guarantees the writer mutex
	// is released even when fn panics or exits the goroutine.
	defer sb.Abort()
	db.activeBatches.Add(1)
	defer db.activeBatches.Add(-1)
	defer markGoroutine(&db.batchGoroutines)()
	if err := fn(&Batch{sb: sb}); err != nil {
		return err
	}
	return sb.Commit()
}

// AddVertex appends a vertex. label may be empty. After the first query or
// DDL this is a batch of one; group bulk writes with Batch instead.
func (db *DB) AddVertex(label string, props Props) (VertexID, error) {
	vals, err := toValues(props)
	if err != nil {
		return 0, err
	}
	return writeOne(db, func(sb *snap.Batch) (VertexID, error) {
		return sb.AddVertex(label, vals)
	}, func() (VertexID, error) {
		v := db.g.AddVertex(label)
		for k, sv := range vals {
			if err := db.g.SetVertexProp(v, k, sv); err != nil {
				return v, err
			}
		}
		return v, nil
	})
}

// AddEdge appends an edge. Before the first query the edge goes straight
// into the graph; afterwards it is a batch of one, committed into the
// current snapshot's delta overlay (group bulk writes with Batch).
func (db *DB) AddEdge(src, dst VertexID, label string, props Props) (EdgeID, error) {
	vals, err := toValues(props)
	if err != nil {
		return 0, err
	}
	return writeOne(db, func(sb *snap.Batch) (EdgeID, error) {
		return sb.AddEdge(src, dst, label, vals)
	}, func() (EdgeID, error) {
		e, err := db.g.AddEdge(src, dst, label)
		if err != nil {
			return 0, err
		}
		for k, v := range vals {
			if err := db.g.SetEdgeProp(e, k, v); err != nil {
				return 0, err
			}
		}
		return e, nil
	})
}

// DeleteEdge tombstones an edge; the tombstone lives in the snapshot delta
// until the background merger folds it out of the indexes.
func (db *DB) DeleteEdge(e EdgeID) error {
	_, err := writeOne(db, func(sb *snap.Batch) (struct{}, error) {
		return struct{}{}, sb.DeleteEdge(e)
	}, func() (struct{}, error) {
		return struct{}{}, db.g.DeleteEdge(e)
	})
	return err
}

// writeOne runs a single write through the guard and the right path:
// once a snapshot manager exists, a batch of one; before then, a direct
// mutation of the load-phase graph under db.mu (re-checking the manager
// under the lock, since a concurrent first query may have just published).
func writeOne[T any](db *DB, staged func(*snap.Batch) (T, error), loadPhase func() (T, error)) (T, error) {
	var zero T
	if err := db.writeGuard(); err != nil {
		return zero, err
	}
	if mgr := db.mgr.Load(); mgr != nil {
		return commitOne(mgr, staged)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if mgr := db.mgr.Load(); mgr != nil {
		return commitOne(mgr, staged)
	}
	return loadPhase()
}

// commitOne runs a single staged op through the manager's group-commit
// path: concurrent singleton writes coalesce into one batch publication —
// one graph clone, one WAL record, one fsync — while a lone write behaves
// exactly as a batch of one.
func commitOne[T any](mgr *snap.Manager, stage func(*snap.Batch) (T, error)) (T, error) {
	var id T
	err := mgr.CommitSingle(func(sb *snap.Batch) error {
		var serr error
		id, serr = stage(sb)
		return serr
	})
	return id, err
}

// Flush folds all pending delta ops into a fresh block-packed base,
// synchronously (the background merger does the same off the query path
// once enough ops accumulate).
func (db *DB) Flush() error {
	if err := db.writeGuard(); err != nil {
		return err
	}
	if mgr := db.mgr.Load(); mgr != nil {
		return mgr.Merge()
	}
	return nil
}

// Exec runs an index DDL command: RECONFIGURE PRIMARY INDEXES …,
// CREATE 1-HOP VIEW …, CREATE 2-HOP VIEW …, or DROP VIEW ….
func (db *DB) Exec(ddl string) error {
	if err := db.writeGuard(); err != nil {
		return err
	}
	mgr, err := db.ensureManager()
	if err != nil {
		return err
	}
	d, err := query.ParseDDL(ddl)
	if err != nil {
		return err
	}
	switch d := d.(type) {
	case query.Reconfigure:
		return mgr.Reconfigure(d.Cfg)
	case query.Create1Hop:
		return mgr.CreateVertexPartitioned(d.Def)
	case query.Create2Hop:
		return mgr.CreateEdgePartitioned(d.Def)
	case query.DropView:
		ok, err := mgr.DropIndex(d.Name)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("aplus: no secondary index named %q", d.Name)
		}
		return nil
	default:
		return fmt.Errorf("aplus: unsupported DDL")
	}
}

// DropIndex removes a secondary index by view name. Like every write it is
// rejected from inside a Query callback; since the signature has no error,
// that case also reports false — indistinguishable from a missing index.
// On durable databases a WAL-append failure likewise reports false (the
// drop was not published); use Exec("DROP VIEW <name>") where every
// failure mode surfaces as an error.
func (db *DB) DropIndex(name string) bool {
	if err := db.writeGuard(); err != nil {
		return false
	}
	if mgr := db.mgr.Load(); mgr != nil {
		ok, _ := mgr.DropIndex(name)
		return ok
	}
	return false
}

// Row is one query match: variable name to matched entity ID.
type Row struct {
	g        *storage.Graph
	Vertices map[string]VertexID
	Edges    map[string]EdgeID
}

// VertexProp reads a property of a matched vertex from the snapshot the
// running query has pinned, so the value is consistent with the match even
// while writers commit concurrently. Do not call it after the callback
// returns.
func (r Row) VertexProp(v VertexID, key string) any {
	return fromValue(r.g.VertexProp(v, key))
}

// EdgeProp reads a property of a matched edge; the Query-callback
// counterpart of DB.EdgeProp (see Row.VertexProp).
func (r Row) EdgeProp(e EdgeID, key string) any {
	return fromValue(r.g.EdgeProp(e, key))
}

// Metrics reports the work a query execution performed.
type Metrics struct {
	// ICost is the number of adjacency-list entries read (the paper's
	// intersection-cost metric).
	ICost int64
	// PredEvals is the number of per-entry predicate evaluations.
	PredEvals int64
	// EstimatedICost is the optimizer's cost estimate for the chosen plan.
	EstimatedICost float64
}

// Count runs a query and returns the number of matches. It honors the
// database-wide governance defaults (DB.Limits, DB.QueryTimeout,
// MaxConcurrentQueries); use CountCtx to additionally pass a cancelable
// context.
func (db *DB) Count(cypher string) (int64, error) {
	n, _, err := db.CountProfiledCtx(context.Background(), cypher)
	return n, err
}

// CountProfiled runs a query and also reports execution metrics. The count
// and the merged ICost/PredEvals are identical whatever Parallelism is.
// Governance defaults apply as in Count; see CountProfiledCtx.
func (db *DB) CountProfiled(cypher string) (int64, Metrics, error) {
	return db.CountProfiledCtx(context.Background(), cypher)
}

// Query streams matches to fn; returning false stops early. fn is never
// called concurrently with itself, but with Parallelism != 1 rows arrive in
// a nondeterministic order. The query observes the snapshot current when it
// started for its entire run: concurrently committed writes neither appear
// in its rows nor block it. fn may issue reads (they pin their own, possibly
// newer, snapshot); writes from inside fn fail with ErrWriteInQueryCallback.
// A panic inside fn — even on a worker goroutine — drains the pool,
// releases the snapshot pin, and re-raises on the calling goroutine.
// Governance defaults apply as in Count; see QueryCtx.
func (db *DB) Query(cypher string, fn func(Row) bool) error {
	return db.QueryCtx(context.Background(), cypher, fn)
}

// Explain returns the physical plan chosen for a query.
func (db *DB) Explain(cypher string) (string, error) {
	s, err := db.pin()
	if err != nil {
		return "", err
	}
	defer s.Release()
	plan, _, err := db.planSnap(s, cypher)
	if err != nil {
		return "", err
	}
	return plan.Explain(), nil
}

// pin builds the indexes if needed and pins the current snapshot.
func (db *DB) pin() (*snap.Snapshot, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	mgr, err := db.ensureManager()
	if err != nil {
		return nil, err
	}
	return mgr.Acquire(), nil
}

// DefaultPlanCacheSize is the compiled-plan cache capacity used when
// DB.PlanCacheSize is 0.
const DefaultPlanCacheSize = 256

// planKey keys the plan cache: normalized query text plus the effective
// planner mode. The mode is part of the key (not just the generation)
// because the same store serves both delta-clean reads and delta-pending
// reads with secondary indexes hidden.
type planKey struct {
	text string
	mode opt.Mode
}

// plans lazily creates the plan cache at the first read (nil = disabled).
func (db *DB) plans() *plancache.Cache[planKey, *exec.Plan] {
	db.planOnce.Do(func() {
		size := db.PlanCacheSize
		if size == 0 {
			size = DefaultPlanCacheSize
		}
		if size > 0 {
			db.planCache = plancache.New[planKey, *exec.Plan](size)
		}
	})
	return db.planCache
}

// planSnap resolves the plan for a query against a pinned snapshot and
// builds its runtime. While the snapshot carries unmerged writes, secondary
// indexes are hidden from the planner: materialized views do not cover the
// delta overlay, and the primary indexes (which splice it) answer every
// query shape.
func (db *DB) planSnap(s *snap.Snapshot, cypher string) (*exec.Plan, *exec.Runtime, error) {
	mode := db.Planner.mode()
	if !s.Delta().Empty() {
		mode.DisableSecondary = true
	}
	plan, err := db.planFor(s.Store(), cypher, mode)
	if err != nil {
		return nil, nil, err
	}
	rt := exec.NewRuntimeOver(s.Store(), s.Graph(), s.Delta())
	rt.Shard = exec.ShardSpec(db.Shard)
	return plan, rt, nil
}

// planFor returns a compiled plan for cypher, consulting the plan cache.
// The cache generation is the frozen *index.Store identity: compiled plans
// embed direct pointers into the store's secondary indexes and its resolved
// partition codes, and every fold or DDL publishes a new store, so keying
// on store identity invalidates exactly when a cached plan could go stale.
// Parse errors and plan failures are never cached.
func (db *DB) planFor(store *index.Store, cypher string, mode opt.Mode) (*exec.Plan, error) {
	c := db.plans()
	if c == nil {
		q, err := query.Parse(cypher)
		if err != nil {
			return nil, err
		}
		return opt.Optimize(store, q, mode)
	}
	key := planKey{text: plancache.Normalize(cypher), mode: mode}
	if plan, ok := c.Get(store, key); ok {
		return plan, nil
	}
	q, err := query.Parse(cypher)
	if err != nil {
		return nil, err
	}
	plan, err := opt.Optimize(store, q, mode)
	if err != nil {
		return nil, err
	}
	c.Put(store, key, plan)
	return plan, nil
}

// VertexProp reads a vertex property (nil when absent, or after Close).
func (db *DB) VertexProp(v VertexID, key string) any {
	if db.closed.Load() {
		return nil
	}
	if mgr := db.mgr.Load(); mgr != nil {
		s := mgr.Acquire()
		defer s.Release()
		return fromValue(s.Graph().VertexProp(v, key))
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return fromValue(db.g.VertexProp(v, key))
}

// EdgeProp reads an edge property (nil when absent, or after Close).
func (db *DB) EdgeProp(e EdgeID, key string) any {
	if db.closed.Load() {
		return nil
	}
	if mgr := db.mgr.Load(); mgr != nil {
		s := mgr.Acquire()
		defer s.Release()
		return fromValue(s.Graph().EdgeProp(e, key))
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return fromValue(db.g.EdgeProp(e, key))
}

// Stats summarizes the database and index footprints.
type Stats struct {
	NumVertices, NumEdges      int
	GraphBytes                 int64
	PrimaryLevelBytes          int64
	PrimaryIDListBytes         int64
	SecondaryIndexBytes        int64
	IndexedEdgesIncludingViews int64

	// Epoch is the current snapshot's publication number (0 before the
	// first query or DDL).
	Epoch uint64
	// PendingWrites is the number of committed ops awaiting a merge into
	// block-packed index form.
	PendingWrites int
	// RetiredEpochs counts superseded snapshots whose last reader has
	// unpinned.
	RetiredEpochs int64
	// LastMergeError is the most recent delta-fold failure ("" when the
	// last fold succeeded). A persistent value here means pending writes
	// cannot currently be folded into block-packed form and PendingWrites
	// will keep climbing; Flush returns the same error synchronously.
	LastMergeError string

	// FoldsTotal counts published delta folds (incremental or full);
	// IncrementalFolds counts the subset that patched only the owners the
	// delta touched (O(delta)) instead of rebuilding every index (O(E)).
	FoldsTotal       int64
	IncrementalFolds int64
	// LastFoldDuration is the most recent fold's build time and
	// LastFoldDirtyOwners the number of dirty (direction, owner) lists it
	// carried — together the observable cost of the write path's merges.
	LastFoldDuration    time.Duration
	LastFoldDirtyOwners int
	// GroupCommits counts publications that coalesced 2+ concurrent
	// singleton writes into one batch (one WAL record, one fsync);
	// GroupedWrites is the number of writes they carried.
	GroupCommits  int64
	GroupedWrites int64

	// Durability counters; all zero for in-memory databases (New).

	// WALBytes is the current size of the write-ahead log. It grows with
	// every commit and shrinks when a checkpoint truncates the covered
	// prefix.
	WALBytes int64
	// CheckpointEpoch is the epoch of the newest checkpoint on disk (0
	// before the first fold checkpoints).
	CheckpointEpoch uint64
	// CheckpointBytes is the newest checkpoint's file size.
	CheckpointBytes int64
	// ReplayedOps is the number of WAL operations Open replayed during
	// recovery — 0 after a clean shutdown whose whole state was
	// checkpointed, positive when a WAL tail had to be re-committed.
	ReplayedOps int64
	// LastCheckpointError is the most recent checkpoint failure ("" when
	// the last attempt succeeded); a persistent value means the WAL cannot
	// be truncated and keeps growing, the durable counterpart of
	// LastMergeError.
	LastCheckpointError string
	// Degraded reports that a failed WAL fsync poisoned the log: every
	// write fails fast with ErrDegraded while reads keep serving the last
	// published snapshot. DegradedCause holds the original fsync failure.
	// Only reopening the database (recovering from the durable prefix)
	// clears it.
	Degraded      bool
	DegradedCause string
	// LastWALError is the most recent WAL append failure of any kind (""
	// if none) — set also for non-degrading failures like a full disk,
	// where the log stays healthy and later commits may succeed.
	LastWALError string
	// MergeRetries counts background retries of a failed fold or
	// checkpoint; RetryBackoff is the delay currently in force between
	// them (0 when the merger is healthy).
	MergeRetries int64
	RetryBackoff time.Duration

	// Query-governance observability — the signals an admission-controlling
	// serving layer consumes.

	// QueriesInFlight is the number of admitted reads currently executing.
	QueriesInFlight int64
	// QueriesRejected counts reads failed fast by AdmitReject at the
	// MaxConcurrentQueries gate.
	QueriesRejected int64
	// QueriesCanceled counts reads stopped by context cancellation;
	// QueriesTimedOut counts reads stopped by a deadline (context,
	// MaxDuration, or QueryTimeout).
	QueriesCanceled int64
	QueriesTimedOut int64
	// SlowQueries counts reads at least SlowQueryThreshold slow.
	SlowQueries int64
	// QueriesPanicked counts engine panics converted to errors;
	// LastQueryPanic is the most recent one's panic message ("" if none).
	QueriesPanicked int64
	LastQueryPanic  string

	// Latency histograms (log-bucketed p50/p95/p99, mergeable across
	// shards): end-to-end governed-read latency, admission-gate wait, WAL
	// fsync time (durable databases only), and delta-fold duration.
	QueryLatency  LatencyStats
	AdmissionWait LatencyStats
	WALFsync      LatencyStats
	FoldDuration  LatencyStats
	// LastSlowQuery is the most recent read that crossed
	// SlowQueryThreshold (nil when none has).
	LastSlowQuery *SlowQuery

	// Plan-cache observability: a hit reuses a compiled plan (skipping
	// parse and plan search); misses include lookups against a store the
	// cache has not seen yet (fold/DDL invalidation). All zero when
	// PlanCacheSize is negative.
	PlanCacheHits    int64
	PlanCacheMisses  int64
	PlanCacheEntries int64
}

// planCacheStats merges the plan cache's counters into st.
func (db *DB) planCacheStats(st *Stats) {
	if c := db.plans(); c != nil {
		cs := c.Stats()
		st.PlanCacheHits = cs.Hits
		st.PlanCacheMisses = cs.Misses
		st.PlanCacheEntries = cs.Entries
	}
}

// Stats reports sizes; index fields are zero before the first query or DDL.
func (db *DB) Stats() Stats {
	mgr := db.mgr.Load()
	if mgr == nil {
		db.mu.Lock()
		if db.mgr.Load() == nil {
			st := Stats{
				NumVertices: db.g.NumVertices(),
				NumEdges:    db.g.NumLiveEdges(),
				GraphBytes:  db.g.MemoryBytes(),
			}
			db.mu.Unlock()
			db.governanceStats(&st)
			db.planCacheStats(&st)
			return st
		}
		db.mu.Unlock()
		mgr = db.mgr.Load()
	}
	s := mgr.Acquire()
	defer s.Release()
	g := s.Graph()
	is := s.Store().StatsLocked()
	ms := mgr.Stats()
	st := Stats{
		NumVertices:                g.NumVertices(),
		NumEdges:                   g.NumLiveEdges() - s.Delta().Deletes(),
		GraphBytes:                 g.MemoryBytes(),
		PrimaryLevelBytes:          is.PrimaryLevels,
		PrimaryIDListBytes:         is.PrimaryIDLists,
		SecondaryIndexBytes:        is.SecondaryBytes,
		IndexedEdgesIncludingViews: is.IndexedEdges,
		Epoch:                      ms.Epoch,
		PendingWrites:              s.Delta().Pending(),
		RetiredEpochs:              ms.RetiredEpochs,
		LastMergeError:             ms.LastMergeError,
		FoldsTotal:                 ms.FoldsTotal,
		IncrementalFolds:           ms.IncrementalFolds,
		LastFoldDuration:           ms.LastFoldDuration,
		LastFoldDirtyOwners:        ms.LastFoldDirtyOwners,
		GroupCommits:               ms.GroupCommits,
		GroupedWrites:              ms.GroupedOps,
		MergeRetries:               ms.MergeRetries,
		RetryBackoff:               ms.RetryBackoff,
		FoldDuration:               ms.FoldHist,
	}
	if db.eng != nil {
		es := db.eng.Stats()
		st.WALBytes = es.WALBytes
		st.CheckpointEpoch = es.CheckpointEpoch
		st.CheckpointBytes = es.CheckpointBytes
		st.ReplayedOps = db.replayedOps
		st.LastCheckpointError = es.LastCheckpointError
		st.Degraded = es.Degraded
		st.DegradedCause = es.DegradedCause
		st.LastWALError = es.LastWALError
		st.WALFsync = es.FsyncHist
	}
	db.governanceStats(&st)
	db.planCacheStats(&st)
	return st
}

// writeGuard rejects writes issued after Close or from inside a Query or
// Batch callback. It is nearly free when neither applies; the callback
// check identifies the calling goroutine (one small runtime.Stack read)
// and tests it against the goroutines currently marked as running
// callbacks.
func (db *DB) writeGuard() error {
	if db.closed.Load() {
		return ErrClosed
	}
	inQuery := db.activeQueries.Load() > 0
	inBatch := db.activeBatches.Load() > 0
	if !inQuery && !inBatch {
		return nil
	}
	id := gid()
	if inQuery {
		if _, ok := db.cbGoroutines.Load(id); ok {
			return ErrWriteInQueryCallback
		}
	}
	if inBatch {
		if _, ok := db.batchGoroutines.Load(id); ok {
			return ErrWriteInBatchCallback
		}
	}
	return nil
}

// markGoroutine registers the calling goroutine in a callback-goroutine
// set and returns the matching unmark. Nesting (a callback issued from
// inside a callback on the same goroutine) is counted, so an inner unmark
// does not strip the outer protection.
func markGoroutine(m *sync.Map) func() {
	id := gid()
	v, _ := m.LoadOrStore(id, new(atomic.Int64))
	c := v.(*atomic.Int64)
	c.Add(1)
	return func() {
		if c.Add(-1) == 0 {
			m.Delete(id)
		}
	}
}

// markCallbackGoroutine marks the caller as a Query-callback goroutine.
func (db *DB) markCallbackGoroutine() func() {
	return markGoroutine(&db.cbGoroutines)
}

// gid returns the calling goroutine's id, parsed from the first line of its
// stack header ("goroutine N [...]"). It costs roughly a microsecond and is
// only used on write entry points while queries are in flight, and once per
// worker per streaming query.
func gid() uint64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	s := buf[len("goroutine "):n]
	var id uint64
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

func toValues(props Props) (map[string]storage.Value, error) {
	if len(props) == 0 {
		return nil, nil
	}
	vals := make(map[string]storage.Value, len(props))
	for k, val := range props {
		sv, err := toValue(val)
		if err != nil {
			return nil, fmt.Errorf("aplus: property %q: %w", k, err)
		}
		vals[k] = sv
	}
	return vals, nil
}

func toValue(v any) (storage.Value, error) {
	switch x := v.(type) {
	case nil:
		return storage.NullValue, nil
	case int:
		return storage.Int(int64(x)), nil
	case int32:
		return storage.Int(int64(x)), nil
	case int64:
		return storage.Int(x), nil
	case float64:
		return storage.Float(x), nil
	case string:
		return storage.Str(x), nil
	case bool:
		return storage.Bool(x), nil
	default:
		return storage.NullValue, fmt.Errorf("unsupported property type %T", v)
	}
}

func fromValue(v storage.Value) any {
	switch v.Kind {
	case storage.KindInt:
		return v.I
	case storage.KindFloat:
		return v.F
	case storage.KindString:
		return v.S
	case storage.KindBool:
		return v.I != 0
	default:
		return nil
	}
}
