// Package aplus is an embeddable, in-memory graph database engine built
// around A+ indexes: tunable, space-efficient adjacency-list indexes with
// materialized-view support, as described in "A+ Indexes: Tunable and
// Space-Efficient Adjacency Lists in Graph Database Management Systems"
// (ICDE 2021).
//
// The engine stores property graphs, answers an openCypher MATCH/WHERE
// subset with worst-case-optimal join plans, and lets applications tailor
// its adjacency-list indexes to their workload:
//
//   - the primary A+ indexes can be reconfigured with arbitrary nested
//     partitioning and sorting criteria (RECONFIGURE PRIMARY INDEXES …);
//   - secondary vertex-partitioned indexes materialize predicate-filtered
//     1-hop views in byte-packed offset lists (CREATE 1-HOP VIEW …);
//   - secondary edge-partitioned indexes materialize 2-hop views that give
//     constant-time access to the adjacency of an edge (CREATE 2-HOP
//     VIEW …).
//
// A minimal session:
//
//	db := aplus.New()
//	alice, _ := db.AddVertex("Customer", aplus.Props{"name": "Alice"})
//	acct, _ := db.AddVertex("Account", aplus.Props{"city": "SF"})
//	db.AddEdge(alice, acct, "Owns", nil)
//	n, _ := db.Count("MATCH (c:Customer)-[:Owns]->(a:Account) WHERE a.city = 'SF'")
package aplus

import (
	"fmt"

	"github.com/aplusdb/aplus/internal/exec"
	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/opt"
	"github.com/aplusdb/aplus/internal/query"
	"github.com/aplusdb/aplus/internal/storage"
)

// VertexID identifies a vertex.
type VertexID = storage.VertexID

// EdgeID identifies an edge.
type EdgeID = storage.EdgeID

// Props carries property values for loading: int/int64/float64/string/bool.
type Props map[string]any

// PlannerOptions restrict the optimizer's plan space; the zero value is the
// full A+ plan space. They exist for experiments that emulate systems with
// fixed adjacency-list indexes.
type PlannerOptions struct {
	// BinaryJoinsOnly removes multiway intersections (WCOJ) from the plan
	// space, as in Neo4j-class systems.
	BinaryJoinsOnly bool
	// IgnoreSecondaryIndexes hides secondary A+ indexes from the planner.
	IgnoreSecondaryIndexes bool
	// NoSortedSegments forbids binary-searched segment access inside
	// sorted lists.
	NoSortedSegments bool
}

func (p PlannerOptions) mode() opt.Mode {
	return opt.Mode{
		DisableWCOJ:        p.BinaryJoinsOnly,
		DisableSecondary:   p.IgnoreSecondaryIndexes,
		DisableSegments:    p.NoSortedSegments,
		DisableMultiExtend: p.BinaryJoinsOnly,
	}
}

// DB is an in-memory graph database with A+ indexes.
type DB struct {
	g     *storage.Graph
	store *index.Store

	// Planner controls the optimizer's plan space for subsequent queries.
	Planner PlannerOptions
}

// New returns an empty database with the default index configuration
// (partition by edge label, sort by neighbour ID).
func New() *DB {
	return &DB{g: storage.NewGraph()}
}

// newFromGraph wraps an existing internal graph (used by the generator
// helpers and the experiment harness).
func newFromGraph(g *storage.Graph) *DB { return &DB{g: g} }

// ensureStore builds the primary indexes lazily after loading.
func (db *DB) ensureStore() error {
	if db.store != nil {
		return nil
	}
	s, err := index.NewStore(db.g, index.DefaultConfig())
	if err != nil {
		return err
	}
	db.store = s
	return nil
}

// AddVertex appends a vertex. label may be empty.
func (db *DB) AddVertex(label string, props Props) (VertexID, error) {
	v := db.g.AddVertex(label)
	for k, val := range props {
		sv, err := toValue(val)
		if err != nil {
			return v, fmt.Errorf("aplus: property %q: %w", k, err)
		}
		if err := db.g.SetVertexProp(v, k, sv); err != nil {
			return v, err
		}
	}
	return v, nil
}

// AddEdge appends an edge. Before the first query the edge goes straight
// into the graph; afterwards it is routed through index maintenance
// (update buffers merged at a threshold, as in Section IV-C of the paper).
func (db *DB) AddEdge(src, dst VertexID, label string, props Props) (EdgeID, error) {
	vals := make(map[string]storage.Value, len(props))
	for k, val := range props {
		sv, err := toValue(val)
		if err != nil {
			return 0, fmt.Errorf("aplus: property %q: %w", k, err)
		}
		vals[k] = sv
	}
	if db.store != nil {
		return db.store.InsertEdge(src, dst, label, vals)
	}
	e, err := db.g.AddEdge(src, dst, label)
	if err != nil {
		return 0, err
	}
	for k, v := range vals {
		if err := db.g.SetEdgeProp(e, k, v); err != nil {
			return 0, err
		}
	}
	return e, nil
}

// DeleteEdge tombstones an edge; the tombstone is merged out of the
// indexes at the next buffer merge.
func (db *DB) DeleteEdge(e EdgeID) error {
	if db.store != nil {
		return db.store.DeleteEdge(e)
	}
	return db.g.DeleteEdge(e)
}

// Flush merges all pending index update buffers.
func (db *DB) Flush() error {
	if db.store == nil {
		return nil
	}
	return db.store.Flush()
}

// Exec runs an index DDL command: RECONFIGURE PRIMARY INDEXES …,
// CREATE 1-HOP VIEW …, or CREATE 2-HOP VIEW ….
func (db *DB) Exec(ddl string) error {
	if err := db.ensureStore(); err != nil {
		return err
	}
	d, err := query.ParseDDL(ddl)
	if err != nil {
		return err
	}
	switch d := d.(type) {
	case query.Reconfigure:
		return db.store.Reconfigure(d.Cfg)
	case query.Create1Hop:
		_, err := db.store.CreateVertexPartitioned(d.Def)
		return err
	case query.Create2Hop:
		_, err := db.store.CreateEdgePartitioned(d.Def)
		return err
	default:
		return fmt.Errorf("aplus: unsupported DDL")
	}
}

// DropIndex removes a secondary index by view name.
func (db *DB) DropIndex(name string) bool {
	if db.store == nil {
		return false
	}
	return db.store.DropIndex(name)
}

// Row is one query match: variable name to matched entity ID.
type Row struct {
	Vertices map[string]VertexID
	Edges    map[string]EdgeID
}

// Metrics reports the work a query execution performed.
type Metrics struct {
	// ICost is the number of adjacency-list entries read (the paper's
	// intersection-cost metric).
	ICost int64
	// PredEvals is the number of per-entry predicate evaluations.
	PredEvals int64
	// EstimatedICost is the optimizer's cost estimate for the chosen plan.
	EstimatedICost float64
}

// Count runs a query and returns the number of matches.
func (db *DB) Count(cypher string) (int64, error) {
	n, _, err := db.CountProfiled(cypher)
	return n, err
}

// CountProfiled runs a query and also reports execution metrics.
func (db *DB) CountProfiled(cypher string) (int64, Metrics, error) {
	plan, rt, err := db.plan(cypher)
	if err != nil {
		return 0, Metrics{}, err
	}
	n := plan.Count(rt)
	return n, Metrics{ICost: rt.ICost, PredEvals: rt.PredEvals, EstimatedICost: plan.EstimatedICost}, nil
}

// Query streams matches to fn; returning false stops early.
func (db *DB) Query(cypher string, fn func(Row) bool) error {
	plan, rt, err := db.plan(cypher)
	if err != nil {
		return err
	}
	plan.Execute(rt, func(b *exec.Binding) bool {
		row := Row{Vertices: make(map[string]VertexID), Edges: make(map[string]EdgeID)}
		for i, name := range plan.VertexNames {
			row.Vertices[name] = b.V[i]
		}
		for i, name := range plan.EdgeNames {
			row.Edges[name] = b.E[i]
		}
		return fn(row)
	})
	return nil
}

// Explain returns the physical plan chosen for a query.
func (db *DB) Explain(cypher string) (string, error) {
	plan, _, err := db.plan(cypher)
	if err != nil {
		return "", err
	}
	return plan.Explain(), nil
}

func (db *DB) plan(cypher string) (*exec.Plan, *exec.Runtime, error) {
	if err := db.ensureStore(); err != nil {
		return nil, nil, err
	}
	q, err := query.Parse(cypher)
	if err != nil {
		return nil, nil, err
	}
	plan, err := opt.Optimize(db.store, q, db.Planner.mode())
	if err != nil {
		return nil, nil, err
	}
	return plan, exec.NewRuntime(db.store), nil
}

// VertexProp reads a vertex property (nil when absent).
func (db *DB) VertexProp(v VertexID, key string) any {
	return fromValue(db.g.VertexProp(v, key))
}

// EdgeProp reads an edge property (nil when absent).
func (db *DB) EdgeProp(e EdgeID, key string) any {
	return fromValue(db.g.EdgeProp(e, key))
}

// Stats summarizes the database and index footprints.
type Stats struct {
	NumVertices, NumEdges      int
	GraphBytes                 int64
	PrimaryLevelBytes          int64
	PrimaryIDListBytes         int64
	SecondaryIndexBytes        int64
	IndexedEdgesIncludingViews int64
}

// Stats reports sizes; index fields are zero before the first query or DDL.
func (db *DB) Stats() Stats {
	st := Stats{
		NumVertices: db.g.NumVertices(),
		NumEdges:    db.g.NumLiveEdges(),
		GraphBytes:  db.g.MemoryBytes(),
	}
	if db.store != nil {
		is := db.store.Stats()
		st.PrimaryLevelBytes = is.PrimaryLevels
		st.PrimaryIDListBytes = is.PrimaryIDLists
		st.SecondaryIndexBytes = is.SecondaryBytes
		st.IndexedEdgesIncludingViews = is.IndexedEdges
	}
	return st
}

func toValue(v any) (storage.Value, error) {
	switch x := v.(type) {
	case nil:
		return storage.NullValue, nil
	case int:
		return storage.Int(int64(x)), nil
	case int32:
		return storage.Int(int64(x)), nil
	case int64:
		return storage.Int(x), nil
	case float64:
		return storage.Float(x), nil
	case string:
		return storage.Str(x), nil
	case bool:
		return storage.Bool(x), nil
	default:
		return storage.NullValue, fmt.Errorf("unsupported property type %T", v)
	}
}

func fromValue(v storage.Value) any {
	switch v.Kind {
	case storage.KindInt:
		return v.I
	case storage.KindFloat:
		return v.F
	case storage.KindString:
		return v.S
	case storage.KindBool:
		return v.I != 0
	default:
		return nil
	}
}
