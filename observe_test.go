package aplus

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// TestExplainAnalyzeMatchesProfiled pins the tracing oracle: the span sums
// of an EXPLAIN ANALYZE run are bit-identical to CountProfiled's merged
// metrics on the same snapshot, at any worker count. Tracing measures the
// execution; it must never change it.
func TestExplainAnalyzeMatchesProfiled(t *testing.T) {
	db := parallelTestDB(t)
	for _, workers := range []int{1, 2, 4, 7} {
		db.Parallelism = workers
		want, wantM, err := db.CountProfiled(parallelTestQuery)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := db.ExplainAnalyze(parallelTestQuery)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Count != want {
			t.Errorf("workers=%d: trace count = %d, want %d", workers, tr.Count, want)
		}
		if tr.Metrics.ICost != wantM.ICost || tr.Metrics.PredEvals != wantM.PredEvals {
			t.Errorf("workers=%d: trace metrics = %+v, want %+v", workers, tr.Metrics, wantM)
		}
		if len(tr.Spans) == 0 {
			t.Fatalf("workers=%d: no spans", workers)
		}
		var sumICost, sumPreds int64
		for _, sp := range tr.Spans {
			sumICost += sp.ICost
			sumPreds += sp.PredEvals
			if sp.ICost < 0 || sp.PredEvals < 0 || sp.Nanos < 0 {
				t.Errorf("workers=%d: negative exclusive span %+v", workers, sp)
			}
		}
		if sumICost != wantM.ICost {
			t.Errorf("workers=%d: span i-cost sum = %d, want %d", workers, sumICost, wantM.ICost)
		}
		if sumPreds != wantM.PredEvals {
			t.Errorf("workers=%d: span pred-eval sum = %d, want %d", workers, sumPreds, wantM.PredEvals)
		}
		if got := tr.Spans[len(tr.Spans)-1].Op; got != "count sink" {
			t.Errorf("workers=%d: final span op = %q, want count sink", workers, got)
		}
		if workers > 1 {
			var wICost, wRows int64
			for _, ws := range tr.Workers {
				wICost += ws.ICost
				wRows += ws.Rows
				if ws.Shard != 0 {
					t.Errorf("unsharded worker tagged shard %d", ws.Shard)
				}
			}
			if wICost != wantM.ICost {
				t.Errorf("workers=%d: worker i-cost sum = %d, want %d", workers, wICost, wantM.ICost)
			}
			if wRows != want {
				t.Errorf("workers=%d: worker row sum = %d, want %d", workers, wRows, want)
			}
		}
	}
}

// TestExplainAnalyzeStolenAttribution extends the tracing oracle to the
// work-stealing path: a super-hub DB at 8 workers reports stolen
// sub-morsels, charges them to the executing workers (the per-worker sums
// still equal the profiled metrics exactly), and keeps span sums
// bit-identical to an unstolen profiled run.
func TestExplainAnalyzeStolenAttribution(t *testing.T) {
	db := New()
	var vs []VertexID
	for i := 0; i < 48; i++ {
		v, err := db.AddVertex("V", nil)
		if err != nil {
			t.Fatal(err)
		}
		vs = append(vs, v)
	}
	for i := range vs {
		if _, err := db.AddEdge(vs[i], vs[(i*5+1)%len(vs)], "E", nil); err != nil {
			t.Fatal(err)
		}
		if _, err := db.AddEdge(vs[i], vs[(i*11+2)%len(vs)], "E", nil); err != nil {
			t.Fatal(err)
		}
	}
	// The super-hub: vertex 0's list dwarfs the morsel size, so its tail is
	// re-partitioned onto the steal queue.
	for k := 0; k < 6000; k++ {
		if _, err := db.AddEdge(vs[0], vs[(k*7+1)%len(vs)], "E", nil); err != nil {
			t.Fatal(err)
		}
	}
	const hubQ = "MATCH a-[e1]->b-[e2]->c"
	db.Parallelism = 8
	db.MorselSize = 8
	want, wantM, err := db.CountProfiled(hubQ)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := db.ExplainAnalyze(hubQ)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count != want {
		t.Errorf("trace count = %d, want %d", tr.Count, want)
	}
	if tr.Metrics.ICost != wantM.ICost || tr.Metrics.PredEvals != wantM.PredEvals {
		t.Errorf("trace metrics = %+v, want %+v", tr.Metrics, wantM)
	}
	if tr.Stolen == 0 {
		t.Fatal("hub query reported no stolen sub-morsels")
	}
	var sumICost, sumPreds int64
	for _, sp := range tr.Spans {
		sumICost += sp.ICost
		sumPreds += sp.PredEvals
	}
	if sumICost != wantM.ICost || sumPreds != wantM.PredEvals {
		t.Errorf("span sums (%d,%d) != profiled (%d,%d)", sumICost, sumPreds, wantM.ICost, wantM.PredEvals)
	}
	var wICost, wRows, wStolen int64
	for _, ws := range tr.Workers {
		wICost += ws.ICost
		wRows += ws.Rows
		wStolen += ws.Stolen
	}
	if wICost != wantM.ICost || wRows != want {
		t.Errorf("worker sums (icost %d, rows %d) != profiled (%d, %d)", wICost, wRows, wantM.ICost, want)
	}
	if wStolen != tr.Stolen {
		t.Errorf("worker stolen sum %d != trace stolen %d", wStolen, tr.Stolen)
	}
	if out := tr.Render(); !strings.Contains(out, "stolen=") {
		t.Errorf("rendering of a stolen run omits the stolen counter:\n%s", out)
	}
}

// TestExplainAnalyzeRender smoke-tests the human rendering: header totals,
// one numbered line per span, and the sink marker.
func TestExplainAnalyzeRender(t *testing.T) {
	db := parallelTestDB(t)
	tr, err := db.ExplainAnalyze(parallelTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	out := tr.Render()
	if !strings.Contains(out, "EXPLAIN ANALYZE") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "Σ count sink") {
		t.Errorf("missing sink line:\n%s", out)
	}
	if got := strings.Count(out, "icost="); got < len(tr.Spans) {
		t.Errorf("rendered %d span lines, want >= %d:\n%s", got, len(tr.Spans), out)
	}
}

// TestExplainAnalyzePartialOnBudget asserts a governance stop still yields
// the partial trace with Stopped set, alongside the budget error.
func TestExplainAnalyzePartialOnBudget(t *testing.T) {
	db := parallelTestDB(t)
	tr, err := db.ExplainAnalyzeLimited(context.Background(), parallelTestQuery, QueryLimits{MaxICost: 1})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if tr == nil {
		t.Fatal("no partial trace returned with the budget error")
	}
	if tr.Stopped == "" {
		t.Error("partial trace has empty Stopped reason")
	}
}

// TestStatsLatencyHistograms asserts the per-query histograms accumulate:
// every governed read lands one query-latency and one admission-wait sample.
func TestStatsLatencyHistograms(t *testing.T) {
	db := parallelTestDB(t)
	const runs = 5
	for i := 0; i < runs; i++ {
		if _, err := db.Count(parallelTestQuery); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.QueryLatency.Count < runs {
		t.Errorf("query latency samples = %d, want >= %d", st.QueryLatency.Count, runs)
	}
	if st.QueryLatency.Max <= 0 || st.QueryLatency.Sum <= 0 {
		t.Errorf("query latency max=%v sum=%v, want > 0", st.QueryLatency.Max, st.QueryLatency.Sum)
	}
	if st.QueryLatency.P99 < st.QueryLatency.P50 {
		t.Errorf("p99 %v < p50 %v", st.QueryLatency.P99, st.QueryLatency.P50)
	}
	if st.AdmissionWait.Count < runs {
		t.Errorf("admission wait samples = %d, want >= %d", st.AdmissionWait.Count, runs)
	}
}

// TestSlowQueryCapture asserts a read over the threshold is counted,
// published as LastSlowQuery, and logged structurally.
func TestSlowQueryCapture(t *testing.T) {
	db := parallelTestDB(t)
	var buf bytes.Buffer
	db.SlowQueryThreshold = time.Nanosecond // every query is slow
	db.SlowQueryLog = slog.New(slog.NewJSONHandler(&buf, nil))
	n, err := db.Count(parallelTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.SlowQueries == 0 {
		t.Error("slow query not counted")
	}
	sq := st.LastSlowQuery
	if sq == nil {
		t.Fatal("no LastSlowQuery in stats")
	}
	if sq.Query != parallelTestQuery {
		t.Errorf("slow query text = %q, want %q", sq.Query, parallelTestQuery)
	}
	if sq.Rows != n {
		t.Errorf("slow query rows = %d, want %d", sq.Rows, n)
	}
	if sq.Outcome != "ok" {
		t.Errorf("slow query outcome = %q, want ok", sq.Outcome)
	}
	if sq.ICost <= 0 || sq.Duration <= 0 || sq.When.IsZero() {
		t.Errorf("slow query missing fields: %+v", sq)
	}
	if sq.Plan == "" {
		t.Error("slow query has no plan rendering")
	}
	log := buf.String()
	if !strings.Contains(log, "slow query") || !strings.Contains(log, "\"outcome\":\"ok\"") {
		t.Errorf("structured log missing fields: %s", log)
	}
}

// TestSlowQueryOutcomeOnStop asserts the slow-query record of a governed
// stop carries the stop reason, not "ok".
func TestSlowQueryOutcomeOnStop(t *testing.T) {
	db := parallelTestDB(t)
	db.SlowQueryThreshold = time.Nanosecond
	_, _, err := db.CountProfiledLimited(context.Background(), parallelTestQuery, QueryLimits{MaxICost: 1})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	sq := db.Stats().LastSlowQuery
	if sq == nil {
		t.Fatal("no LastSlowQuery after budget stop")
	}
	if sq.Outcome != "i-cost budget" {
		t.Errorf("outcome = %q, want i-cost budget", sq.Outcome)
	}
}
