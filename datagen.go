package aplus

import (
	"fmt"

	"github.com/aplusdb/aplus/internal/gen"
)

// DatasetConfig describes a synthetic benchmark graph. The presets mirror
// the paper's datasets (Table I) at reduced scale with matching average
// degrees; see DESIGN.md for the substitution rationale.
type DatasetConfig struct {
	// Preset selects a base: "orkut", "livejournal", "wikitopcats",
	// "berkstan". Empty means use NumVertices/AvgDegree directly.
	Preset      string
	NumVertices int
	AvgDegree   float64
	// VertexLabels and EdgeLabels give the G_{i,j} random label counts.
	VertexLabels, EdgeLabels int
	// Financial decorates vertices with acc/city and edges with
	// amt/date/currency; Time adds a time property to edges.
	Financial bool
	Time      bool
	Seed      int64
	// Scale multiplies the preset's vertex count (0 = 1.0).
	Scale float64
}

// Generate builds a synthetic database from a config.
func Generate(cfg DatasetConfig) (*DB, error) {
	var base gen.Config
	switch cfg.Preset {
	case "orkut":
		base = gen.Orkut
	case "livejournal":
		base = gen.LiveJournal
	case "wikitopcats":
		base = gen.WikiTopcats
	case "berkstan":
		base = gen.BerkStan
	case "":
		if cfg.NumVertices <= 0 || cfg.AvgDegree <= 0 {
			return nil, fmt.Errorf("aplus: NumVertices and AvgDegree required without a preset")
		}
		base = gen.Config{Name: "custom", NumVertices: cfg.NumVertices, AvgDegree: cfg.AvgDegree}
	default:
		return nil, fmt.Errorf("aplus: unknown preset %q", cfg.Preset)
	}
	if cfg.Scale > 0 {
		base.NumVertices = int(float64(base.NumVertices) * cfg.Scale)
	}
	if cfg.NumVertices > 0 {
		base.NumVertices = cfg.NumVertices
	}
	if cfg.AvgDegree > 0 {
		base.AvgDegree = cfg.AvgDegree
	}
	base = base.WithLabels(cfg.VertexLabels, cfg.EdgeLabels)
	base.Financial = cfg.Financial
	base.Time = cfg.Time
	base.Seed = cfg.Seed
	return newFromGraph(gen.Build(base)), nil
}

// PropertyPercentile returns the value at a percentile of a non-null
// integer edge property — handy for choosing predicate constants with a
// target selectivity (the paper's 5%-selective α values).
func (db *DB) PropertyPercentile(prop string, pct float64) (int64, bool) {
	return gen.PercentileInt(db.g, prop, pct)
}
