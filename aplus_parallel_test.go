package aplus

import (
	"sync"
	"testing"
)

const parallelTestQuery = "MATCH (a:V0)-[e1:E0]->(b:V1)-[e2:E0]->(c:V0)"

func parallelTestDB(t *testing.T) *DB {
	t.Helper()
	db, err := Generate(DatasetConfig{
		NumVertices: 800, AvgDegree: 6,
		VertexLabels: 2, EdgeLabels: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestParallelCountMatchesSerial asserts the public contract: identical
// counts and identical merged metrics whatever the worker count.
func TestParallelCountMatchesSerial(t *testing.T) {
	db := parallelTestDB(t)
	db.Parallelism = 1
	want, wantM, err := db.CountProfiled(parallelTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	if want == 0 {
		t.Fatal("test query should match")
	}
	for _, workers := range []int{2, 4, 7} {
		db.Parallelism = workers
		got, m, err := db.CountProfiled(parallelTestQuery)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("workers=%d: count = %d, want %d", workers, got, want)
		}
		if m.ICost != wantM.ICost || m.PredEvals != wantM.PredEvals {
			t.Errorf("workers=%d: metrics = %+v, want %+v", workers, m, wantM)
		}
	}
}

// TestConcurrentCounts hammers the read path from many goroutines (run
// under -race) while each query itself fans out over the worker pool.
func TestConcurrentCounts(t *testing.T) {
	db := parallelTestDB(t)
	db.Parallelism = 2
	want, err := db.Count(parallelTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, err := db.Count(parallelTestQuery)
			if err != nil {
				errs <- err
				return
			}
			if n != want {
				t.Errorf("concurrent count = %d, want %d", n, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentReadsWithWrites interleaves queries with writes; the store's
// RWMutex must keep every query on one consistent index snapshot.
func TestConcurrentReadsWithWrites(t *testing.T) {
	db := parallelTestDB(t)
	db.Parallelism = 4
	if _, err := db.Count(parallelTestQuery); err != nil { // build indexes
		t.Fatal(err)
	}
	var readers sync.WaitGroup
	stopWrites := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		n := VertexID(db.Stats().NumVertices)
		for i := 0; ; i++ {
			select {
			case <-stopWrites:
				return
			default:
			}
			if _, err := db.AddEdge(VertexID(i)%n, VertexID(i*13+1)%n, "E0", nil); err != nil {
				t.Error(err)
				return
			}
			if i%8 == 0 {
				if _, err := db.AddVertex("V0", Props{"name": "w"}); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for i := 0; i < 8; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for j := 0; j < 4; j++ {
				if _, err := db.Count(parallelTestQuery); err != nil {
					t.Error(err)
					return
				}
				db.Stats()
				db.VertexProp(0, "name")
			}
		}()
	}
	for i := 0; i < 8; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			seen := 0
			err := db.Query(parallelTestQuery, func(r Row) bool {
				r.VertexProp(r.Vertices["a"], "name") // in-callback prop read must not deadlock
				seen++
				return seen < 100 // exercise early termination under load
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	readers.Wait()
	close(stopWrites)
	<-writerDone
}

// TestQueryEarlyTermination checks the public streaming contract under
// parallel execution: after fn returns false it is never called again.
func TestQueryEarlyTermination(t *testing.T) {
	db := parallelTestDB(t)
	db.Parallelism = 4
	db.MorselSize = 16
	total, err := db.Count(parallelTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	const limit = 9
	if total <= limit {
		t.Fatalf("need > %d matches, have %d", limit, total)
	}
	calls := 0
	err = db.Query(parallelTestQuery, func(Row) bool {
		calls++
		return calls < limit
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != limit {
		t.Errorf("fn called %d times, want exactly %d", calls, limit)
	}
}

// TestRowPropsInCallback checks that Row's lock-free property accessors
// return the same values as the DB-level ones.
func TestRowPropsInCallback(t *testing.T) {
	db := New()
	a, _ := db.AddVertex("V", Props{"name": "a"})
	b, _ := db.AddVertex("V", Props{"name": "b"})
	if _, err := db.AddEdge(a, b, "E", Props{"w": 3}); err != nil {
		t.Fatal(err)
	}
	found := false
	err := db.Query("MATCH x-[e:E]->y", func(r Row) bool {
		found = true
		if got := r.VertexProp(r.Vertices["x"], "name"); got != "a" {
			t.Errorf("VertexProp = %v, want a", got)
		}
		if got := r.EdgeProp(r.Edges["e"], "w"); got != int64(3) {
			t.Errorf("EdgeProp = %v, want 3", got)
		}
		return true
	})
	if err != nil || !found {
		t.Fatalf("query failed: %v found=%v", err, found)
	}
}

// TestParallelismOnEmptyDB covers the zero-vertex morsel edge case through
// the public API.
func TestParallelismOnEmptyDB(t *testing.T) {
	db := New()
	db.Parallelism = 8
	n, err := db.Count("MATCH (a)-[e]->(b)")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("count on empty db = %d, want 0", n)
	}
}

// TestCountPushdownMatchesEnumeration pins the public contract of count
// pushdown: Count (which may fold trailing fan-out EXTENDs into a product
// of list lengths) agrees with a streamed enumeration via Query, including
// parallel-edge multiplicities, at Parallelism 1 and 8 — with identical
// merged metrics.
func TestCountPushdownMatchesEnumeration(t *testing.T) {
	db := New()
	var vs []VertexID
	for i := 0; i < 50; i++ {
		v, err := db.AddVertex("A", nil)
		if err != nil {
			t.Fatal(err)
		}
		vs = append(vs, v)
	}
	for i, v := range vs {
		for d := 1; d <= i%4; d++ {
			if _, err := db.AddEdge(v, vs[(i+d)%len(vs)], "W", nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Parallel edges on a hub: each multiplicity must be counted.
	for k := 0; k < 3; k++ {
		if _, err := db.AddEdge(vs[3], vs[4], "W", nil); err != nil {
			t.Fatal(err)
		}
	}
	// Fan-out star: the b/c/d extensions all hang off a, so counting folds
	// their product.
	const star = "MATCH (a)-[e1]->(b), (a)-[e2]->(c), (a)-[e3]->(d)"
	db.Parallelism = 1
	var enumerated int64
	if err := db.Query(star, func(Row) bool {
		enumerated++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if enumerated == 0 {
		t.Fatal("degenerate test: no matches")
	}
	var metrics []Metrics
	for _, workers := range []int{1, 8} {
		db.Parallelism = workers
		n, m, err := db.CountProfiled(star)
		if err != nil {
			t.Fatal(err)
		}
		if n != enumerated {
			t.Errorf("Parallelism=%d: Count = %d, enumerated = %d", workers, n, enumerated)
		}
		metrics = append(metrics, m)
	}
	if metrics[0] != metrics[1] {
		t.Errorf("metrics differ across worker counts: %+v vs %+v", metrics[0], metrics[1])
	}
}
