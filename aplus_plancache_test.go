package aplus

// Integration tests for the compiled-plan cache on the embedded read path:
// repeated and alternating query texts must hit, layout-only differences
// must share an entry, and any event that publishes a new index store
// (fold, DDL) must invalidate exactly once — a hit always returns the plan
// a fresh compile would have produced.

import (
	"strings"
	"testing"
)

func planCacheGraph(t *testing.T) *DB {
	t.Helper()
	db := New()
	const n = 24
	for i := 0; i < n; i++ {
		if _, err := db.AddVertex("P", nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		for d := 1; d <= 3; d++ {
			if _, err := db.AddEdge(VertexID(i), VertexID((i+d)%n), "K", nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

func TestPlanCacheHitsAndAlternation(t *testing.T) {
	db := planCacheGraph(t)
	q1 := "MATCH a-[e]->b"
	q2 := "MATCH a-[e]->b, b-[f]->c"
	n1, err := db.Count(q1)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := db.Count(q2)
	if err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.PlanCacheHits != 0 || st.PlanCacheMisses != 2 || st.PlanCacheEntries != 2 {
		t.Fatalf("after cold runs: %+v", pcTriple(st))
	}
	// Alternating texts must all hit (the old last-pipeline cache only kept
	// the immediately-previous plan warm).
	for i := 0; i < 3; i++ {
		if got, err := db.Count(q1); err != nil || got != n1 {
			t.Fatalf("q1: %d, %v (want %d)", got, err, n1)
		}
		if got, err := db.Count(q2); err != nil || got != n2 {
			t.Fatalf("q2: %d, %v (want %d)", got, err, n2)
		}
	}
	st = db.Stats()
	if st.PlanCacheHits != 6 || st.PlanCacheMisses != 2 {
		t.Fatalf("after alternation: %+v", pcTriple(st))
	}
}

func TestPlanCacheNormalizedKey(t *testing.T) {
	db := planCacheGraph(t)
	if _, err := db.Count("MATCH a-[e]->b"); err != nil {
		t.Fatal(err)
	}
	// Same query, different layout: must share the entry.
	if _, err := db.Count("  MATCH\t a-[e]->b \n"); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.PlanCacheHits != 1 || st.PlanCacheMisses != 1 || st.PlanCacheEntries != 1 {
		t.Fatalf("normalized key: %+v", pcTriple(st))
	}
}

func TestPlanCacheInvalidatedByWriteAndFold(t *testing.T) {
	db := planCacheGraph(t)
	q := "MATCH a-[e]->b"
	before, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Count(q); err != nil {
		t.Fatal(err)
	}
	// A committed write leaves the store unchanged (delta overlay) but the
	// delta-pending planner mode is part of the key: the next read misses
	// once, then hits, and sees the new edge.
	if _, err := db.AddEdge(0, 5, "K", nil); err != nil {
		t.Fatal(err)
	}
	got, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != before+1 {
		t.Fatalf("count after write: %d, want %d", got, before+1)
	}
	// Folding publishes a new store: the generation flips, so the next read
	// compiles fresh against the folded indexes and still sees the edge.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err = db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != before+1 {
		t.Fatalf("count after fold: %d, want %d", got, before+1)
	}
}

func TestPlanCacheInvalidatedByDDL(t *testing.T) {
	db := planCacheGraph(t)
	q := "MATCH a-[e]->b WHERE e.w > 0"
	if _, err := db.Count(q); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Count(q); err != nil {
		t.Fatal(err)
	}
	hitsBefore := db.Stats().PlanCacheHits
	if hitsBefore == 0 {
		t.Fatal("expected a warm hit before DDL")
	}
	// DDL publishes a new store; the cached plan must not be reused (it
	// may now be beaten by the new index, and its pointers are stale).
	if err := db.Exec("CREATE 1-HOP VIEW V MATCH vs-[eadj]->vd INDEX AS FW PARTITION BY eadj.label"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Count(q); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.PlanCacheHits != hitsBefore {
		t.Fatalf("hit served across DDL: hits %d -> %d", hitsBefore, st.PlanCacheHits)
	}
	// The re-compiled plan should now use the secondary view.
	plan, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "V") {
		t.Logf("plan after DDL (no view chosen, acceptable if costed out):\n%s", plan)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	db := planCacheGraph(t)
	db.PlanCacheSize = -1
	for i := 0; i < 3; i++ {
		if _, err := db.Count("MATCH a-[e]->b"); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.PlanCacheHits != 0 || st.PlanCacheMisses != 0 || st.PlanCacheEntries != 0 {
		t.Fatalf("disabled cache counted: %+v", pcTriple(st))
	}
}

func pcTriple(st Stats) [3]int64 {
	return [3]int64{st.PlanCacheHits, st.PlanCacheMisses, st.PlanCacheEntries}
}
