package aplus

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// snapTestDB builds a small indexed database: n vertices labeled V, a ring
// of E0 edges, and indexes already built (the first Count publishes the
// first snapshot).
func snapTestDB(t *testing.T, n int) *DB {
	t.Helper()
	db := New()
	for i := 0; i < n; i++ {
		if _, err := db.AddVertex("V", nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := db.AddEdge(VertexID(i), VertexID((i+1)%n), "E0", nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Count("MATCH (a:V)-[e:E0]->(b:V)"); err != nil {
		t.Fatal(err)
	}
	return db
}

func mustCount(t *testing.T, db *DB, q string) int64 {
	t.Helper()
	n, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

const snapEdgeQuery = "MATCH (a:V)-[e:E0]->(b:V)"

func TestBatchCommitIsAtomic(t *testing.T) {
	db := snapTestDB(t, 16)
	base := mustCount(t, db, snapEdgeQuery)

	err := db.Batch(func(b *Batch) error {
		v, err := b.AddVertex("V", Props{"name": "new"})
		if err != nil {
			return err
		}
		for i := 0; i < 5; i++ {
			if _, err := b.AddEdge(VertexID(i), v, "E0", nil); err != nil {
				return err
			}
		}
		return b.DeleteEdge(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustCount(t, db, snapEdgeQuery); got != base+5-1 {
		t.Fatalf("count %d want %d", got, base+4)
	}
	if got := db.VertexProp(VertexID(16), "name"); got != "new" {
		t.Fatalf("batch vertex prop = %v", got)
	}
}

func TestBatchErrorDiscardsEverything(t *testing.T) {
	db := snapTestDB(t, 16)
	base := mustCount(t, db, snapEdgeQuery)
	boom := errors.New("boom")

	err := db.Batch(func(b *Batch) error {
		if _, err := b.AddEdge(0, 1, "E0", nil); err != nil {
			return err
		}
		if err := b.DeleteEdge(2); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := mustCount(t, db, snapEdgeQuery); got != base {
		t.Fatalf("aborted batch leaked: count %d want %d", got, base)
	}
}

// TestWriteInsideQueryCallbackFailsFast pins the guard satellite: every
// write entry point invoked from inside a Query callback must return
// ErrWriteInQueryCallback immediately (the lock-based engine used to
// self-deadlock here), at both worker counts.
func TestWriteInsideQueryCallbackFailsFast(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db := snapTestDB(t, 16)
			db.Parallelism = workers
			checked := false
			err := db.Query(snapEdgeQuery, func(Row) bool {
				checked = true
				if _, err := db.AddEdge(0, 1, "E0", nil); !errors.Is(err, ErrWriteInQueryCallback) {
					t.Errorf("AddEdge: %v", err)
				}
				if _, err := db.AddVertex("V", nil); !errors.Is(err, ErrWriteInQueryCallback) {
					t.Errorf("AddVertex: %v", err)
				}
				if err := db.DeleteEdge(0); !errors.Is(err, ErrWriteInQueryCallback) {
					t.Errorf("DeleteEdge: %v", err)
				}
				if err := db.Flush(); !errors.Is(err, ErrWriteInQueryCallback) {
					t.Errorf("Flush: %v", err)
				}
				if err := db.Batch(func(*Batch) error { return nil }); !errors.Is(err, ErrWriteInQueryCallback) {
					t.Errorf("Batch: %v", err)
				}
				if err := db.Exec("CREATE 1-HOP VIEW X MATCH vs-[eadj]->vd INDEX AS FW PARTITION BY eadj.label"); !errors.Is(err, ErrWriteInQueryCallback) {
					t.Errorf("Exec: %v", err)
				}
				if _, err := db.Advise([]string{snapEdgeQuery}, 0); !errors.Is(err, ErrWriteInQueryCallback) {
					t.Errorf("Advise: %v", err)
				}
				return false // one row suffices
			})
			if err != nil {
				t.Fatal(err)
			}
			if !checked {
				t.Fatal("callback never ran")
			}
			// After the query the same goroutine may write again.
			if _, err := db.AddEdge(0, 1, "E0", nil); err != nil {
				t.Fatalf("write after query: %v", err)
			}
			// Nested reads stay allowed from inside callbacks.
			err = db.Query(snapEdgeQuery, func(Row) bool {
				if _, err := db.Count(snapEdgeQuery); err != nil {
					t.Errorf("nested Count: %v", err)
				}
				return false
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWritersDoNotBlockOnReaders pins the tentpole's scheduling contract:
// a writer commits while a Query callback is still in flight on another
// goroutine, without waiting for the query to finish.
func TestWritersDoNotBlockOnReaders(t *testing.T) {
	db := snapTestDB(t, 64)
	inCallback := make(chan struct{})
	releaseCallback := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		first := true
		done <- db.Query(snapEdgeQuery, func(Row) bool {
			if first {
				first = false
				close(inCallback)
				<-releaseCallback
			}
			return true
		})
	}()
	<-inCallback
	// The reader is parked inside its callback, snapshot pinned. A commit
	// must still go through.
	if _, err := db.AddEdge(0, 2, "E0", nil); err != nil {
		t.Fatal(err)
	}
	close(releaseCallback)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := mustCount(t, db, snapEdgeQuery); got != 65 {
		t.Fatalf("count %d want 65", got)
	}
}

// TestDeleteVisibleBeforeMerge checks delta delete splicing end to end:
// a deletion is observed by queries immediately (while still buffered) and
// survives the fold.
func TestDeleteVisibleBeforeMerge(t *testing.T) {
	db := snapTestDB(t, 16)
	if err := db.DeleteEdge(3); err != nil {
		t.Fatal(err)
	}
	if got := mustCount(t, db, snapEdgeQuery); got != 15 {
		t.Fatalf("pre-merge count %d want 15", got)
	}
	if st := db.Stats(); st.PendingWrites == 0 {
		t.Fatal("delete not pending")
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.PendingWrites != 0 {
		t.Fatalf("pending %d after flush", st.PendingWrites)
	}
	if got := mustCount(t, db, snapEdgeQuery); got != 15 {
		t.Fatalf("post-merge count %d want 15", got)
	}
}

// TestCountPushdownWithDeltaOverlay checks that the count-pushdown fold
// stays bit-identical to enumeration (count and i-cost, at any worker
// count) when lists carry a delta overlay.
func TestCountPushdownWithDeltaOverlay(t *testing.T) {
	db := snapTestDB(t, 16)
	// Make the delta non-trivial: fan-out edges on a few hubs plus a
	// deletion, all unmerged.
	err := db.Batch(func(b *Batch) error {
		for i := 0; i < 6; i++ {
			if _, err := b.AddEdge(2, VertexID(5+i), "E0", nil); err != nil {
				return err
			}
			if _, err := b.AddEdge(2, VertexID(5+i), "E0", nil); err != nil { // parallel
				return err
			}
		}
		return b.DeleteEdge(7)
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Stats().PendingWrites == 0 {
		t.Fatal("delta unexpectedly empty")
	}

	star := "MATCH (a:V)-[e1:E0]->(b:V), (a:V)-[e2:E0]->(c:V)"
	db.Parallelism = 1
	serial, m1, err := db.CountProfiled(star)
	if err != nil {
		t.Fatal(err)
	}
	var enumerated int64
	if err := db.Query(star, func(Row) bool { enumerated++; return true }); err != nil {
		t.Fatal(err)
	}
	if serial != enumerated {
		t.Fatalf("folded %d != enumerated %d", serial, enumerated)
	}
	db.Parallelism = 8
	par, m8, err := db.CountProfiled(star)
	if err != nil {
		t.Fatal(err)
	}
	if par != serial || m8.ICost != m1.ICost {
		t.Fatalf("parallel (%d, icost %d) != serial (%d, icost %d)", par, m8.ICost, serial, m1.ICost)
	}
}

// TestSecondaryIndexWithDelta: materialized views are hidden while a delta
// is pending (they cannot cover it) and come back after the fold, with
// counts identical throughout.
func TestSecondaryIndexWithDelta(t *testing.T) {
	db := snapTestDB(t, 16)
	if err := db.Exec("CREATE 1-HOP VIEW VN MATCH vs-[eadj]->vd INDEX AS FW-BW PARTITION BY eadj.label"); err != nil {
		t.Fatal(err)
	}
	base := mustCount(t, db, snapEdgeQuery)
	if _, err := db.AddEdge(1, 4, "E0", nil); err != nil {
		t.Fatal(err)
	}
	if got := mustCount(t, db, snapEdgeQuery); got != base+1 {
		t.Fatalf("count with pending delta %d want %d", got, base+1)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := mustCount(t, db, snapEdgeQuery); got != base+1 {
		t.Fatalf("count after fold %d want %d", got, base+1)
	}
}

// TestConcurrentSnapshotStress is the DB-level mixed workload under -race:
// 8 reader goroutines count continuously while one writer commits batches
// and the background merger folds (tiny threshold). Every count observed
// must be a state the writer actually published: with inserts only, counts
// must be non-decreasing per reader.
func TestConcurrentSnapshotStress(t *testing.T) {
	db := snapTestDB(t, 64)
	db.MergeThreshold = 0 // default; set before first use would be needed
	const (
		readers    = 8
		batches    = 30
		perBatch   = 8
		finalCount = 64 + batches*perBatch
	)
	var wg sync.WaitGroup
	var stop atomic.Bool
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			last := int64(0)
			for !stop.Load() {
				n := mustCount(t, db, snapEdgeQuery)
				if n < last {
					t.Errorf("reader %d: count went backwards: %d after %d", r, n, last)
					return
				}
				last = n
			}
		}(r)
	}
	for i := 0; i < batches; i++ {
		err := db.Batch(func(b *Batch) error {
			for j := 0; j < perBatch; j++ {
				if _, err := b.AddEdge(VertexID((i*7+j)%64), VertexID((i*13+j+1)%64), "E0", nil); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := mustCount(t, db, snapEdgeQuery); got != finalCount {
		t.Fatalf("final count %d want %d", got, finalCount)
	}
	st := db.Stats()
	if st.Epoch == 0 {
		t.Fatal("no epochs published")
	}
	t.Logf("epoch=%d retired=%d pending=%d", st.Epoch, st.RetiredEpochs, st.PendingWrites)
}

// TestNewLabelAfterIndexBuild: an edge whose label the frozen base has
// never seen cannot be buffered; the commit must fold to a fresh base and
// stay queryable.
func TestNewLabelAfterIndexBuild(t *testing.T) {
	db := snapTestDB(t, 8)
	if _, err := db.AddEdge(0, 3, "Brand", nil); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.PendingWrites != 0 {
		t.Fatalf("unbufferable edge left pending ops: %d", st.PendingWrites)
	}
	n, err := db.Count("MATCH (a:V)-[e:Brand]->(b:V)")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("count %d want 1", n)
	}
}

// TestBatchPoisonedByStagingError: a staging failure (here a property kind
// mismatch discovered after the edge was appended to the clone) must make
// Commit refuse even when the callback swallows the error — otherwise the
// half-staged edge (in the graph, absent from the delta) would be visible
// to scan-anchored plans but not index-anchored ones.
func TestBatchPoisonedByStagingError(t *testing.T) {
	db := snapTestDB(t, 8)
	if _, err := db.AddEdge(0, 1, "E0", Props{"amt": 7}); err != nil { // int column exists
		t.Fatal(err)
	}
	base := mustCount(t, db, snapEdgeQuery)
	err := db.Batch(func(b *Batch) error {
		_, err := b.AddEdge(2, 3, "E0", Props{"amt": "not-an-int"})
		if err == nil {
			t.Error("kind mismatch not reported")
		}
		return nil // swallow it — Commit must still refuse
	})
	if err == nil {
		t.Fatal("poisoned batch committed")
	}
	if got := mustCount(t, db, snapEdgeQuery); got != base {
		t.Fatalf("half-staged edge leaked: count %d want %d", got, base)
	}
	st := db.Stats()
	if st.NumEdges != int(base) {
		t.Fatalf("Stats.NumEdges %d want %d", st.NumEdges, base)
	}
}

// TestWriteInsideBatchCallbackFailsFast: DB-level writes from inside a
// Batch callback would deadlock on the held writer mutex; they must fail
// with ErrWriteInBatchCallback instead, while staged Batch ops and
// DB-level reads keep working.
func TestWriteInsideBatchCallbackFailsFast(t *testing.T) {
	db := snapTestDB(t, 16)
	base := mustCount(t, db, snapEdgeQuery)
	err := db.Batch(func(b *Batch) error {
		if _, err := db.AddEdge(0, 1, "E0", nil); !errors.Is(err, ErrWriteInBatchCallback) {
			t.Errorf("nested AddEdge: %v", err)
		}
		if err := db.Flush(); !errors.Is(err, ErrWriteInBatchCallback) {
			t.Errorf("nested Flush: %v", err)
		}
		if err := db.Batch(func(*Batch) error { return nil }); !errors.Is(err, ErrWriteInBatchCallback) {
			t.Errorf("nested Batch: %v", err)
		}
		// Reads pin the pre-batch snapshot and stay legal.
		if got := mustCount(t, db, snapEdgeQuery); got != base {
			t.Errorf("read inside batch saw %d want %d", got, base)
		}
		_, err := b.AddEdge(0, 1, "E0", nil) // staging on the batch is the way
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustCount(t, db, snapEdgeQuery); got != base+1 {
		t.Fatalf("count %d want %d", got, base+1)
	}
	// The guard lifts once the batch commits.
	if _, err := db.AddEdge(1, 2, "E0", nil); err != nil {
		t.Fatal(err)
	}
}

// TestBatchPanicReleasesWriterLock: a panicking batch callback must not
// leave the writer mutex held (regression: Begin locked it and only the
// error path aborted).
func TestBatchPanicReleasesWriterLock(t *testing.T) {
	db := snapTestDB(t, 8)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic to propagate")
			}
		}()
		_ = db.Batch(func(*Batch) error { panic("user bug") })
	}()
	done := make(chan error, 1)
	go func() {
		_, err := db.AddEdge(0, 1, "E0", nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write deadlocked after a panicking batch")
	}
}

// TestNewStringSortKeyValueFoldsBase: under a string sort key, a batch
// that interns a brand-new string value cannot be buffered — the clone's
// dictionary ranks diverge from the frozen base's, which would splice
// lists out of order (regression: delta entries carried clone-space
// ordinals). The commit must fold to a fresh base and answer exactly.
func TestNewStringSortKeyValueFoldsBase(t *testing.T) {
	db := New()
	for i := 0; i < 8; i++ {
		if _, err := db.AddVertex("V", Props{"city": string(rune('m' + i))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, err := db.AddEdge(VertexID(i), VertexID((i+1)%8), "E0", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Exec("RECONFIGURE PRIMARY INDEXES PARTITION BY eadj.label SORT BY vnbr.city"); err != nil {
		t.Fatal(err)
	}
	// 'a' sorts before every existing city, so a clone-space rank would
	// shift all ranks; 'z' sorts after everything.
	err := db.Batch(func(b *Batch) error {
		va, err := b.AddVertex("V", Props{"city": "a"})
		if err != nil {
			return err
		}
		vz, err := b.AddVertex("V", Props{"city": "z"})
		if err != nil {
			return err
		}
		if _, err := b.AddEdge(0, va, "E0", nil); err != nil {
			return err
		}
		if _, err := b.AddEdge(0, vz, "E0", nil); err != nil {
			return err
		}
		_, err = b.AddEdge(1, vz, "E0", nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.PendingWrites != 0 {
		t.Fatalf("unbufferable string sort value left pending ops: %d", st.PendingWrites)
	}
	for city, want := range map[string]int64{"a": 1, "z": 2, "m": 1} {
		n, err := db.Count(fmt.Sprintf("MATCH (x:V)-[e:E0]->(y:V) WHERE y.city = '%s'", city))
		if err != nil {
			t.Fatal(err)
		}
		if n != want {
			t.Fatalf("city %q count %d want %d", city, n, want)
		}
	}
	// Existing string values still buffer (no fold needed).
	if _, err := db.AddEdge(2, 5, "E0", nil); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.PendingWrites != 1 {
		t.Fatalf("bufferable insert folded eagerly: pending %d", st.PendingWrites)
	}
	n, err := db.Count("MATCH (x:V)-[e:E0]->(y:V)")
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Fatalf("total %d want 12", n)
	}
}

// TestDropIndexSurvivesMerge: a drop followed by a fold must stay dropped
// (regression: a fold racing the drop could republish the pre-drop store).
func TestDropIndexSurvivesMerge(t *testing.T) {
	db := snapTestDB(t, 16)
	if err := db.Exec("CREATE 1-HOP VIEW DropMe MATCH vs-[eadj]->vd INDEX AS FW PARTITION BY eadj.label"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddEdge(0, 5, "E0", nil); err != nil { // dirty the delta
		t.Fatal(err)
	}
	if !db.DropIndex("DropMe") {
		t.Fatal("drop failed")
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.DropIndex("DropMe") {
		t.Fatal("index resurrected by the merge")
	}
	if st := db.Stats(); st.SecondaryIndexBytes != 0 {
		t.Fatalf("secondary bytes %d after drop+merge", st.SecondaryIndexBytes)
	}
}

// TestNewVertexLabelVisibleImmediately: the planner resolves label names
// against the frozen base catalog, so a commit that interns a brand-new
// label must fold to a fresh base — otherwise the committed entities stay
// invisible to queries until some unrelated merge (regression: a
// vertex-only batch left an empty delta, so nothing ever folded).
func TestNewVertexLabelVisibleImmediately(t *testing.T) {
	db := snapTestDB(t, 8)
	if _, err := db.AddVertex("Person", nil); err != nil {
		t.Fatal(err)
	}
	n, err := db.Count("MATCH (p:Person)")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("new-label vertex invisible: count %d want 1", n)
	}
	// Same through a batch mixing a new label with edges to it.
	err = db.Batch(func(b *Batch) error {
		v, err := b.AddVertex("Org", nil)
		if err != nil {
			return err
		}
		_, err = b.AddEdge(0, v, "E0", nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err = db.Count("MATCH (a:V)-[e:E0]->(o:Org)")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("edge to new-label vertex invisible: count %d want 1", n)
	}
}

// TestStatsEpochObservability: epochs advance with commits and retirement
// tracks unpinned snapshots.
func TestStatsEpochObservability(t *testing.T) {
	db := snapTestDB(t, 8)
	st0 := db.Stats()
	if _, err := db.AddEdge(0, 2, "E0", nil); err != nil {
		t.Fatal(err)
	}
	st1 := db.Stats()
	if st1.Epoch <= st0.Epoch {
		t.Fatalf("epoch did not advance: %d -> %d", st0.Epoch, st1.Epoch)
	}
	if st1.PendingWrites != 1 {
		t.Fatalf("pending %d want 1", st1.PendingWrites)
	}
	if st1.RetiredEpochs < st0.RetiredEpochs {
		t.Fatal("retired count went backwards")
	}
}
