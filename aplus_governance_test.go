package aplus

// DB-level tests for query governance: cancellation and deadlines,
// resource budgets with partial metrics, panic isolation (engine and user
// callbacks), admission control, goroutine hygiene, and a -race stress of
// concurrent cancels against writers and folds.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

const (
	triangleQ = "MATCH a1-[e1]->a2-[e2]->a3, a3-[e3]->a1"
	star3Q    = "MATCH a1-[e1]->a2, a1-[e2]->a3, a1-[e3]->a4"
	hop1Q     = "MATCH a1-[e1]->a2"
)

// buildDense fills db with a deterministic dense graph during the load
// phase (before the first query), so index construction happens once on the
// first read.
func buildDense(t testing.TB, db *DB, nv, deg int) {
	t.Helper()
	ids := make([]VertexID, nv)
	for i := range ids {
		v, err := db.AddVertex("V", nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = v
	}
	for i := 0; i < nv; i++ {
		for d := 0; d < deg; d++ {
			dst := (i*131 + d*17 + 1) % nv
			if _, err := db.AddEdge(ids[i], ids[dst], "E", nil); err != nil {
				t.Fatal(err)
			}
		}
	}
}

var (
	heavyOnce sync.Once
	heavyDB   *DB
	heavyFull int64 // full triangle count
	heavyCost int64 // full triangle i-cost
)

// heavy returns a shared read-only dense database whose triangle query is
// slow enough (tens of millions of intersection entries) to cancel, time
// out, and budget-abort mid-flight. Tests that mutate DB fields must build
// their own database instead.
func heavy(t *testing.T) *DB {
	t.Helper()
	heavyOnce.Do(func() {
		heavyDB = New()
		heavyDB.MorselSize = 32
		buildDense(t, heavyDB, 3000, 40)
		n, m, err := heavyDB.CountProfiled(triangleQ)
		if err != nil {
			t.Fatal(err)
		}
		heavyFull, heavyCost = n, m.ICost
	})
	if heavyFull == 0 {
		t.Fatal("heavy graph produced no triangles")
	}
	return heavyDB
}

// snapPins reads the current snapshot's reader count without pinning.
func snapPins(db *DB) int64 { return db.mgr.Load().Stats().Pins }

func TestCancelCountMidFlight(t *testing.T) {
	db := heavy(t)
	before := db.Stats().QueriesCanceled
	ctx, cancel := context.WithCancel(context.Background())
	var cancelAt time.Time
	go func() {
		time.Sleep(time.Millisecond)
		cancelAt = time.Now()
		cancel()
	}()
	start := time.Now()
	n, m, err := db.CountProfiledCtx(ctx, triangleQ)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrQueryCanceled) {
		t.Fatalf("err = %v (n=%d in %v), want ErrQueryCanceled", err, n, elapsed)
	}
	latency := time.Since(cancelAt)
	t.Logf("canceled after %v, returned %v later (partial i-cost %d / full %d)", time.Millisecond, latency, m.ICost, heavyCost)
	if latency > 250*time.Millisecond {
		t.Errorf("cancellation latency %v, want bounded by ~one morsel", latency)
	}
	if m.ICost <= 0 || m.ICost >= heavyCost {
		t.Errorf("partial i-cost = %d, want in (0, %d)", m.ICost, heavyCost)
	}
	if got := snapPins(db); got != 0 {
		t.Errorf("snapshot pins after cancel = %d, want 0", got)
	}
	st := db.Stats()
	if st.QueriesInFlight != 0 {
		t.Errorf("QueriesInFlight = %d, want 0", st.QueriesInFlight)
	}
	if st.QueriesCanceled != before+1 {
		t.Errorf("QueriesCanceled = %d, want %d", st.QueriesCanceled, before+1)
	}
}

func TestCancelPreCanceledContext(t *testing.T) {
	db := heavy(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := db.CountCtx(ctx, star3Q)
	if !errors.Is(err, ErrQueryCanceled) {
		t.Fatalf("err = %v, want ErrQueryCanceled", err)
	}
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Errorf("pre-canceled query took %v, want ~immediate", d)
	}
	if got := snapPins(db); got != 0 {
		t.Errorf("snapshot pins = %d, want 0", got)
	}
	if st := db.Stats(); st.QueriesInFlight != 0 {
		t.Errorf("QueriesInFlight = %d, want 0", st.QueriesInFlight)
	}
}

// TestCancelQueryHubTail cancels a star3 enumeration from inside the
// callback while a single hub-dominated morsel is producing millions of
// rows: the per-sink-tuple governor tick must stop it within a bounded
// number of further emits, not at the (never-reached) morsel boundary.
func TestCancelQueryHubTail(t *testing.T) {
	db := New()
	hub, err := db.AddVertex("H", nil)
	if err != nil {
		t.Fatal(err)
	}
	const fan = 250 // star3 from the hub alone enumerates fan^3 = 15.6M rows
	for i := 0; i < fan; i++ {
		spoke, err := db.AddVertex("S", nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.AddEdge(hub, spoke, "E", nil); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var rows int64
	var cancelAt time.Time
	err = db.QueryCtx(ctx, star3Q, func(Row) bool {
		rows++
		if rows == 10_000 {
			cancelAt = time.Now()
			cancel()
		}
		return true
	})
	if !errors.Is(err, ErrQueryCanceled) {
		t.Fatalf("err = %v after %d rows, want ErrQueryCanceled", err, rows)
	}
	latency := time.Since(cancelAt)
	t.Logf("hub tail: canceled at 10k rows, stopped after %d rows, %v later", rows, latency)
	// Bound: the watcher trips the governor asynchronously; each worker then
	// stops within one CheckEvery window of sink tuples.
	if rows > 200_000 {
		t.Errorf("enumerated %d rows after cancel, want the tail cut within a few check windows", rows)
	}
	if got := snapPins(db); got != 0 {
		t.Errorf("snapshot pins = %d, want 0", got)
	}
}

func TestQueryTimeoutDefault(t *testing.T) {
	db := New()
	db.MorselSize = 32
	buildDense(t, db, 1500, 30)
	db.QueryTimeout = time.Millisecond
	_, err := db.Count(triangleQ)
	if !errors.Is(err, ErrQueryTimeout) {
		t.Fatalf("err = %v, want ErrQueryTimeout", err)
	}
	st := db.Stats()
	if st.QueriesTimedOut == 0 {
		t.Errorf("QueriesTimedOut = 0, want > 0")
	}
	if st.QueriesInFlight != 0 {
		t.Errorf("QueriesInFlight = %d, want 0", st.QueriesInFlight)
	}
	// Lifting the timeout restores normal service on the same DB.
	db.QueryTimeout = 0
	if _, err := db.Count(triangleQ); err != nil {
		t.Fatalf("query after timeout: %v", err)
	}
}

func TestMaxDurationTimesOut(t *testing.T) {
	db := heavy(t)
	before := db.Stats().QueriesTimedOut
	_, m, err := db.CountProfiledLimited(context.Background(), triangleQ, QueryLimits{MaxDuration: time.Millisecond})
	if !errors.Is(err, ErrQueryTimeout) {
		t.Fatalf("err = %v, want ErrQueryTimeout", err)
	}
	if m.ICost <= 0 || m.ICost >= heavyCost {
		t.Errorf("partial i-cost = %d, want in (0, %d)", m.ICost, heavyCost)
	}
	if got := db.Stats().QueriesTimedOut; got != before+1 {
		t.Errorf("QueriesTimedOut = %d, want %d", got, before+1)
	}
}

func TestBudgetICost(t *testing.T) {
	db := heavy(t)
	budget := heavyCost / 10
	_, m, err := db.CountProfiledLimited(context.Background(), triangleQ, QueryLimits{MaxICost: budget})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T, want *BudgetError", err)
	}
	if be.Exceeded != "i-cost" {
		t.Errorf("Exceeded = %q, want i-cost", be.Exceeded)
	}
	if be.Partial.ICost <= budget/2 || be.Partial.ICost >= heavyCost {
		t.Errorf("partial i-cost = %d, want around budget %d and below full %d", be.Partial.ICost, budget, heavyCost)
	}
	if m.ICost != be.Partial.ICost {
		t.Errorf("returned Metrics.ICost %d != BudgetError partial %d", m.ICost, be.Partial.ICost)
	}
}

func TestBudgetRows(t *testing.T) {
	db := heavy(t)
	_, _, err := db.CountProfiledLimited(context.Background(), star3Q, QueryLimits{MaxRows: 1000})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if be.Exceeded != "rows" {
		t.Errorf("Exceeded = %q, want rows", be.Exceeded)
	}
	if be.PartialRows <= 1000 {
		t.Errorf("PartialRows = %d, want > the 1000-row budget it overshot", be.PartialRows)
	}
	// Budgets are advisory gates, not truncation: a query under budget is
	// untouched.
	n, _, err := db.CountProfiledLimited(context.Background(), triangleQ, QueryLimits{MaxRows: heavyFull + 1})
	if err != nil || n != heavyFull {
		t.Errorf("under-budget count = %d, %v, want %d, nil", n, err, heavyFull)
	}
}

// TestWorkerPanicIsolated injects a panic into a live worker goroutine and
// requires it to surface as a wrapped ErrQueryPanic — and the immediately
// following query on the same DB to return bit-identical count and i-cost
// to a fresh database over the same graph.
func TestWorkerPanicIsolated(t *testing.T) {
	db := New()
	buildDense(t, db, 400, 8)
	fresh := New()
	buildDense(t, fresh, 400, 8)
	wantN, wantM, err := fresh.CountProfiled(triangleQ)
	if err != nil {
		t.Fatal(err)
	}

	db.injectWorkerFault = func(w int) {
		if w == db.workers()-1 {
			panic("governance test fault")
		}
	}
	_, _, err = db.CountProfiled(triangleQ)
	if !errors.Is(err, ErrQueryPanic) {
		t.Fatalf("err = %v, want ErrQueryPanic", err)
	}
	var qp *QueryPanicError
	if !errors.As(err, &qp) || qp.Value != "governance test fault" || len(qp.Stack) == 0 {
		t.Fatalf("panic error detail = %+v", qp)
	}
	st := db.Stats()
	if st.QueriesPanicked != 1 || st.LastQueryPanic != "governance test fault" {
		t.Errorf("panic stats = %d %q", st.QueriesPanicked, st.LastQueryPanic)
	}
	if got := snapPins(db); got != 0 {
		t.Errorf("snapshot pins after panic = %d, want 0", got)
	}

	db.injectWorkerFault = nil
	gotN, gotM, err := db.CountProfiled(triangleQ)
	if err != nil {
		t.Fatalf("query after panic: %v", err)
	}
	if gotN != wantN || gotM.ICost != wantM.ICost || gotM.PredEvals != wantM.PredEvals {
		t.Errorf("post-panic count/metrics = %d/%+v, fresh DB = %d/%+v", gotN, gotM, wantN, wantM)
	}
}

// TestQueryCallbackPanicReRaised: a panic in the user's Query callback —
// which may run on a worker goroutine — must re-raise on the calling
// goroutine with the snapshot pin released, not crash the process.
func TestQueryCallbackPanicReRaised(t *testing.T) {
	db := New()
	buildDense(t, db, 200, 6)
	if _, err := db.Count(hop1Q); err != nil { // build indexes
		t.Fatal(err)
	}
	func() {
		defer func() {
			r := recover()
			if r != "callback boom" {
				t.Errorf("recovered %v, want the callback's panic value", r)
			}
		}()
		rows := 0
		db.Query(hop1Q, func(Row) bool {
			rows++
			if rows == 3 {
				panic("callback boom")
			}
			return true
		})
		t.Error("Query returned instead of re-raising the callback panic")
	}()
	if got := snapPins(db); got != 0 {
		t.Fatalf("snapshot pins after callback panic = %d, want 0", got)
	}
	if st := db.Stats(); st.QueriesInFlight != 0 {
		t.Errorf("QueriesInFlight = %d, want 0", st.QueriesInFlight)
	}
	// The DB must be fully usable: reads and writes both.
	if _, err := db.Count(hop1Q); err != nil {
		t.Fatalf("count after callback panic: %v", err)
	}
	if _, err := db.AddVertex("V", nil); err != nil {
		t.Fatalf("write after callback panic: %v", err)
	}
}

// TestBatchCallbackPanicReleasesWriter: a panicking Batch callback must
// release the writer mutex (via the deferred Abort) so later writes work.
func TestBatchCallbackPanicReleasesWriter(t *testing.T) {
	db := New()
	buildDense(t, db, 50, 3)
	if _, err := db.Count(hop1Q); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if r := recover(); r != "batch boom" {
				t.Errorf("recovered %v", r)
			}
		}()
		db.Batch(func(b *Batch) error {
			if _, err := b.AddVertex("V", nil); err != nil {
				return err
			}
			panic("batch boom")
		})
	}()
	done := make(chan error, 1)
	go func() {
		done <- db.Batch(func(b *Batch) error {
			_, err := b.AddVertex("V", nil)
			return err
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("batch after panic: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer mutex not released after Batch callback panic")
	}
}

func TestAdmissionReject(t *testing.T) {
	db := New()
	buildDense(t, db, 200, 6)
	db.MaxConcurrentQueries = 1
	db.AdmissionPolicy = AdmitReject
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		var once sync.Once
		done <- db.Query(hop1Q, func(Row) bool {
			once.Do(func() { close(started) })
			<-release
			return false
		})
	}()
	<-started
	if st := db.Stats(); st.QueriesInFlight != 1 {
		t.Errorf("QueriesInFlight = %d, want 1", st.QueriesInFlight)
	}
	_, err := db.Count(hop1Q)
	if !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("err = %v, want ErrAdmissionRejected", err)
	}
	if st := db.Stats(); st.QueriesRejected != 1 {
		t.Errorf("QueriesRejected = %d, want 1", st.QueriesRejected)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, err := db.Count(hop1Q); err != nil {
		t.Fatalf("count after slot freed: %v", err)
	}
	if st := db.Stats(); st.QueriesInFlight != 0 {
		t.Errorf("QueriesInFlight = %d, want 0", st.QueriesInFlight)
	}
}

func TestAdmissionQueueAndCancelWhileQueued(t *testing.T) {
	db := New()
	buildDense(t, db, 200, 6)
	db.MaxConcurrentQueries = 1 // AdmitQueue is the zero-value policy
	started := make(chan struct{})
	release := make(chan struct{})
	holder := make(chan error, 1)
	go func() {
		var once sync.Once
		holder <- db.Query(hop1Q, func(Row) bool {
			once.Do(func() { close(started) })
			<-release
			return false
		})
	}()
	<-started
	// A queued query whose context dies while waiting leaves the queue with
	// the canceled/timeout sentinel.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := db.CountCtx(ctx, hop1Q); !errors.Is(err, ErrQueryTimeout) {
		t.Fatalf("queued+expired err = %v, want ErrQueryTimeout", err)
	}
	// A queued query with a live context runs as soon as the slot frees.
	queued := make(chan error, 1)
	go func() {
		_, err := db.Count(hop1Q)
		queued <- err
	}()
	time.Sleep(10 * time.Millisecond) // let it reach the gate
	close(release)
	if err := <-holder; err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-queued:
		if err != nil {
			t.Fatalf("queued query: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued query never admitted after slot freed")
	}
}

// TestAdmissionNestedReadBypass: reads issued from inside a Query callback
// must bypass the gate — the outer query holds the only slot, so queueing
// would self-deadlock.
func TestAdmissionNestedReadBypass(t *testing.T) {
	db := New()
	buildDense(t, db, 200, 6)
	db.MaxConcurrentQueries = 1
	want, err := db.Count(hop1Q)
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	err = db.Query(hop1Q, func(Row) bool {
		n, err := db.Count(hop1Q)
		if err != nil || n != want {
			t.Errorf("nested count = %d, %v, want %d, nil", n, err, want)
		}
		ran = true
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("callback never ran")
	}
}

// stableGoroutines waits for the goroutine count to hold still and returns
// it.
func stableGoroutines(t *testing.T) int {
	t.Helper()
	last := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		time.Sleep(10 * time.Millisecond)
		n := runtime.NumGoroutine()
		if n == last && i >= 2 {
			return n
		}
		last = n
	}
	return last
}

// TestGovernanceGoroutineHygiene: the worker pool, context watchers, and
// admission gate must fully drain after cancel, timeout, budget, and panic
// aborts — no goroutine may outlive its query.
func TestGovernanceGoroutineHygiene(t *testing.T) {
	db := New()
	db.MorselSize = 32
	buildDense(t, db, 1200, 20)
	if _, err := db.Count(hop1Q); err != nil { // build indexes + merger
		t.Fatal(err)
	}
	before := stableGoroutines(t)
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() { time.Sleep(500 * time.Microsecond); cancel() }()
		db.CountCtx(ctx, triangleQ)
		cancel()
		db.CountProfiledLimited(context.Background(), triangleQ, QueryLimits{MaxDuration: time.Millisecond})
		db.CountProfiledLimited(context.Background(), triangleQ, QueryLimits{MaxICost: 1000})
	}
	db.injectWorkerFault = func(int) { panic("hygiene fault") }
	db.Count(triangleQ)
	db.injectWorkerFault = nil
	deadline := time.Now().Add(5 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines settled at %d, started at %d — leak after governed aborts", now, before)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := db.Stats(); st.QueriesInFlight != 0 {
		t.Errorf("QueriesInFlight = %d, want 0", st.QueriesInFlight)
	}
	if got := snapPins(db); got != 0 {
		t.Errorf("snapshot pins = %d, want 0", got)
	}
}

// TestCancelStressWithWritersAndFolds races governed reads (short
// deadlines, explicit cancels) against committing writers and synchronous
// folds; run with -race in CI. Nothing may deadlock, leak, or return an
// error outside the governance set.
func TestCancelStressWithWritersAndFolds(t *testing.T) {
	db := New()
	db.MergeThreshold = 64
	buildDense(t, db, 400, 8)
	if _, err := db.Count(hop1Q); err != nil {
		t.Fatal(err)
	}
	var readers, writer sync.WaitGroup
	stop := make(chan struct{})
	writer.Add(1)
	go func() { // writer: committed batches + periodic synchronous folds
		defer writer.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			err := db.Batch(func(b *Batch) error {
				for k := 0; k < 8; k++ {
					src := VertexID((i*7 + k) % 400)
					dst := VertexID((i*13 + k*3 + 1) % 400)
					if _, err := b.AddEdge(src, dst, "E", nil); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			if i%10 == 0 {
				if err := db.Flush(); err != nil {
					t.Errorf("fold: %v", err)
					return
				}
			}
			i++
		}
	}()
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; i < 60; i++ {
				var ctx context.Context
				var cancel context.CancelFunc
				if i%2 == 0 {
					ctx, cancel = context.WithTimeout(context.Background(), time.Duration(1+r)*time.Millisecond)
				} else {
					ctx, cancel = context.WithCancel(context.Background())
					go func() {
						time.Sleep(time.Duration(500+r*300) * time.Microsecond)
						cancel()
					}()
				}
				_, err := db.CountCtx(ctx, triangleQ)
				cancel()
				if err != nil && !errors.Is(err, ErrQueryCanceled) && !errors.Is(err, ErrQueryTimeout) {
					t.Errorf("reader %d: %v", r, err)
					return
				}
			}
		}(r)
	}
	readers.Wait()
	close(stop)
	writer.Wait()
	if _, err := db.Count(triangleQ); err != nil {
		t.Fatalf("count after stress: %v", err)
	}
	if st := db.Stats(); st.QueriesInFlight != 0 {
		t.Errorf("QueriesInFlight = %d, want 0", st.QueriesInFlight)
	}
}
