// Command aplusd serves an aplus cluster over TCP.
//
// It opens (or creates) N replica shards, each a full aplus database with
// its own WAL, and serves the line-oriented aplusd protocol: queries fan
// out across shards with the caller's deadline, budget, and cancellation
// propagated to every shard; writes route through the owner shard's WAL
// and mirror to the replicas; `stats` and `health` expose the aggregated
// observability counters an admission-controlling load balancer consumes.
//
// With -metrics, a second HTTP listener serves /metrics (Prometheus text
// exposition: latency histograms and counters per shard plus a
// shard="cluster" aggregate), /debug/vars (expvar), and /debug/pprof/.
// With -slow-query, reads at least that slow are logged as structured
// JSON to stderr and the most recent one is captured in `stats`.
//
// Quickstart:
//
//	aplusd -dir /var/lib/aplus -shards 2 -addr 127.0.0.1:7687 &
//	aplusshell -connect 127.0.0.1:7687
//
// The same -dir reopens to the same state: shards recover independently
// from their WALs and checkpoints, and a reopen refuses a different
// -shards count (resharding is not supported). Without -dir the cluster
// is in-memory and its data is lost at exit.
//
// SIGINT or SIGTERM shuts down gracefully: the listener closes, in-flight
// queries are canceled and drained, every shard's WAL is closed cleanly,
// and the process exits 0.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	aplus "github.com/aplusdb/aplus"
	"github.com/aplusdb/aplus/internal/server"
	"github.com/aplusdb/aplus/internal/shard"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7687", "TCP listen address")
	dir := flag.String("dir", "", "durable cluster directory (empty = in-memory, data lost at exit)")
	shards := flag.Int("shards", 2, "number of replica shards (fixed at directory creation)")
	noFsync := flag.Bool("no-fsync", false, "skip WAL fsync (faster, loses the crash-durability guarantee)")
	parallelism := flag.Int("parallelism", 0, "per-shard intra-query workers (0 = GOMAXPROCS)")
	planCache := flag.Int("plan-cache", 0, "per-shard compiled-plan cache entries (0 = default, <0 = disabled)")
	maxQueries := flag.Int("max-queries", 0, "per-shard concurrent-query admission gate (0 = unlimited)")
	admission := flag.String("admission", "queue", "admission policy at the max-queries gate: queue|reject")
	queryTimeout := flag.Duration("query-timeout", 0, "per-shard default query deadline (0 = none)")
	mergeThreshold := flag.Int("merge-threshold", 0, "pending delta ops per shard before a fold (0 = default)")
	maxPending := flag.Int("max-pending-writes", 0, "reject writes while aggregate pending writes exceed this (0 = no backpressure)")
	maxRows := flag.Int64("max-rows", 0, "default per-query row-stream cap (0 = unlimited)")
	idle := flag.Duration("idle-timeout", 0, "disconnect connections idle at the prompt for this long (0 = never)")
	metricsAddr := flag.String("metrics", "", "HTTP observability listen address serving /metrics (Prometheus text), /debug/vars, /debug/pprof/ (empty = disabled)")
	slowQuery := flag.Duration("slow-query", 0, "per-shard slow-query threshold: reads at least this slow are counted, captured in stats, and logged as JSON to stderr (0 = disabled)")
	flag.Parse()

	var policy aplus.AdmissionPolicy
	switch *admission {
	case "queue":
		policy = aplus.AdmitQueue
	case "reject":
		policy = aplus.AdmitReject
	default:
		fmt.Fprintf(os.Stderr, "aplusd: bad -admission %q (queue|reject)\n", *admission)
		os.Exit(2)
	}

	var slowLog *slog.Logger
	if *slowQuery > 0 {
		slowLog = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}

	cluster, err := shard.New(shard.Options{
		Shards:               *shards,
		Dir:                  *dir,
		NoFsync:              *noFsync,
		MergeThreshold:       *mergeThreshold,
		Parallelism:          *parallelism,
		PlanCacheSize:        *planCache,
		QueryTimeout:         *queryTimeout,
		MaxConcurrentQueries: *maxQueries,
		AdmissionPolicy:      policy,
		SlowQueryThreshold:   *slowQuery,
		SlowQueryLog:         slowLog,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "aplusd:", err)
		os.Exit(1)
	}

	srv := server.New(cluster, server.Options{
		Addr:             *addr,
		DefaultMaxRows:   *maxRows,
		MaxPendingWrites: *maxPending,
		IdleTimeout:      *idle,
	})
	if err := srv.Start(); err != nil {
		cluster.Close()
		fmt.Fprintln(os.Stderr, "aplusd:", err)
		os.Exit(1)
	}
	var metrics *server.MetricsServer
	if *metricsAddr != "" {
		metrics, err = server.StartMetrics(cluster, *metricsAddr)
		if err != nil {
			srv.Close()
			cluster.Close()
			fmt.Fprintln(os.Stderr, "aplusd: metrics:", err)
			os.Exit(1)
		}
		fmt.Printf("aplusd metrics on %s\n", metrics.Addr())
	}
	st := cluster.Stats()
	where := *dir
	if where == "" {
		where = "in-memory"
	}
	fmt.Printf("aplusd listening on %s (%d shards, %s; %d vertices, %d edges)\n",
		srv.Addr(), cluster.NumShards(), where, st.Aggregate.NumVertices, st.Aggregate.NumEdges)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("aplusd: %v: shutting down\n", s)
	start := time.Now()
	if metrics != nil {
		metrics.Close()
	}
	srv.Close()
	if err := cluster.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "aplusd: close:", err)
		os.Exit(1)
	}
	fmt.Printf("aplusd: clean shutdown in %v\n", time.Since(start).Round(time.Millisecond))
}
