// Command aplusbench regenerates the paper's evaluation tables on the
// scaled synthetic datasets.
//
// Usage:
//
//	aplusbench -exp table2 [-scale 0.5] [-workers 8] [-json rows.json]
//	aplusbench -exp all
//	aplusbench -exp table5 -baseline old.json [-tolerance 0.10]
//	aplusbench -mixed [-mixed-writers 2] [-mixed-readers 8] [-mixed-batch 64] [-mixed-reads 200] [-mixed-ratio 0.2]
//	aplusbench -merge
//	aplusbench -durable /tmp/db
//	aplusbench -faults 24
//	aplusbench -governed
//	aplusbench -served
//
// Experiments: table1, table2, table3, table4, table5, maintenance,
// parallel, hubskew, mixed, merge, durability, faults, governed, served, all
// ("all" excludes mixed, merge, durability, faults, governed, and served,
// whose rows are
// scheduling- or hardware-dependent — or pass/fail rather than a
// measurement — and therefore unsuitable for -baseline gating).
//
// -merge (or -exp merge) measures delta-fold cost on the largest bench
// graph: deltas of increasing size are folded twice, once through the
// O(delta) incremental patch (dirty owners re-packed, clean owners' blocks
// copied wholesale) and once through the O(E) full rebuild, with the two
// successor stores verified bit-identical (checkpoint encodings, counts,
// i-cost) before the latencies are reported.
//
// -durable <dir> (or -exp durability) runs the storage-engine experiment:
// grouped-batch write throughput with every commit fsync'd to the
// write-ahead log vs the in-memory path (bar: within 2x), a mid-workload
// checkpoint, and a close/reopen cycle reporting reopen time, WAL records
// and operations replayed, and checkpoint/WAL sizes. The directory must be
// empty or nonexistent; "-durable tmp" uses a throwaway temp dir.
//
// -faults <n> (or -exp faults) runs the crash/fault-injection sweep over
// the in-memory filesystem: a scripted workload (commits, folds,
// checkpoints, WAL truncations) is traced once fault-free, then re-run
// with a crash and a one-shot fault injected at each of n evenly-sampled
// disk-op sites (0 = every site), asserting recovery is bit-identical to
// the last acknowledged commit and degraded mode engages exactly when a
// commit's WAL fsync fails. Any violated invariant panics.
//
// -served (or -exp served) measures the sharded serving layer: a remote
// triangle count over the aplusd wire protocol on TCP loopback vs the
// same count on an embedded database with identical data (parity of
// counts and i-cost is asserted first), plus the compiled-plan cache's
// cold-vs-warm speedup on the served path. Loopback RTT and scheduler
// noise dominate these rows, so they are advisory and excluded from
// -baseline gating.
//
// -governed (or -exp governed) measures query governance through the
// public API: the runtime overhead of the armed governor (cancel checks
// once per morsel and once per 1024 sink tuples) plus the admission gate
// on the triangle ablation query — acceptance bar 2% over the ungoverned
// path — and the cancel-to-return latency p50/p99 of an in-flight star3
// query on a hub-dominated fan-out shape.
//
// -mixed (or -exp mixed) runs the snapshot-isolation mixed workload:
// reader goroutines counting over pinned snapshots while writer goroutines
// commit batches and the background merger folds deltas; it reports read
// p50/p99 for the read-only and mixed phases, the p99 ratio between them,
// and write throughput.
//
// -workers runs every query through the morsel-driven parallel executor
// with that pool size (0 = serial, matching the paper's single-threaded
// runs). The parallel experiment is the exception: it always sweeps
// 1..max(workers, GOMAXPROCS) worker counts, since a scaling curve needs
// more than one. -json dumps every measured row as a machine-readable
// JSON array for trajectory tracking across commits.
//
// -hist re-runs each measured table query a few times and annotates its
// row with per-run latency p50/p99 (log-bucketed histogram quantiles).
// The quantiles ride along in -json rows but are advisory: -baseline
// gates only runtime, count, and i-cost, never the quantiles.
//
// -baseline loads a prior -json dump and prints per-row deltas against it;
// the process exits non-zero when any matched row runs slower than
// baseline*(1+tolerance), its i-cost grows beyond (1+icost-tolerance), or
// its count changed — the stored-baseline regression gate for CI and local
// before/after runs. A negative -tolerance makes the runtime comparison
// advisory-only (counts and i-cost, which are deterministic, still gate) —
// the right setting when the baseline was blessed on different hardware.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/aplusdb/aplus/internal/faultsweep"
	"github.com/aplusdb/aplus/internal/govbench"
	"github.com/aplusdb/aplus/internal/harness"
	"github.com/aplusdb/aplus/internal/servedbench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|table2|table3|table4|table5|maintenance|parallel|hubskew|mixed|merge|durability|faults|governed|served|all")
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier")
	verify := flag.Bool("verify", true, "cross-check counts across configurations")
	workers := flag.Int("workers", 0, "query worker-pool size (0 = serial, N = morsel-driven with N workers)")
	jsonPath := flag.String("json", "", "write all measured rows to this file as JSON")
	baseline := flag.String("baseline", "", "compare measured rows against this prior -json dump")
	tolerance := flag.Float64("tolerance", 0.10, "slowdown fraction tolerated before -baseline reports a regression; negative = runtime advisory-only (counts/i-cost still gate)")
	icostTolerance := flag.Float64("icost-tolerance", 0.10, "i-cost growth fraction tolerated before -baseline reports a regression")
	mixed := flag.Bool("mixed", false, "run the mixed read/write workload (shorthand for -exp mixed)")
	mergeExp := flag.Bool("merge", false, "run the fold-cost experiment: incremental vs full delta folds across delta sizes (shorthand for -exp merge)")
	durable := flag.String("durable", "", "run the durable storage-engine experiment in this directory (shorthand for -exp durability; \"tmp\" = throwaway temp dir)")
	faultSites := flag.Int("faults", -1, "run the crash/fault-injection sweep over this many evenly-sampled disk-op sites, 0 = all (shorthand for -exp faults)")
	governed := flag.Bool("governed", false, "run the query-governance overhead and cancellation-latency experiment (shorthand for -exp governed)")
	served := flag.Bool("served", false, "run the serving-layer experiment: remote vs embedded latency and plan-cache speedup (shorthand for -exp served)")
	mixedReaders := flag.Int("mixed-readers", 8, "mixed: reader goroutines")
	mixedWriters := flag.Int("mixed-writers", 1, "mixed: writer goroutines committing batches")
	mixedBatch := flag.Int("mixed-batch", 64, "mixed: ops per committed batch")
	mixedReads := flag.Int("mixed-reads", 200, "mixed: queries per reader per phase")
	mixedRatio := flag.Float64("mixed-ratio", 0.2, "mixed: fraction of batch ops that are deletes")
	hist := flag.Bool("hist", false, "re-run each table query a few times and add per-run latency p50/p99 to rows (advisory; excluded from -baseline gating)")
	flag.Parse()
	if *mixed {
		*exp = "mixed"
	}
	if *mergeExp {
		*exp = "merge"
	}
	if *durable != "" {
		*exp = "durability"
	}
	if *faultSites >= 0 {
		*exp = "faults"
	}
	if *governed {
		*exp = "governed"
	}
	if *served {
		*exp = "served"
	}

	var baseRows []harness.Row
	if *baseline != "" {
		var err error
		baseRows, err = harness.LoadRows(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "load baseline: %v\n", err)
			os.Exit(2)
		}
	}

	durableDir := *durable
	if durableDir == "tmp" {
		durableDir = "" // harness.Durability picks a throwaway temp dir
	}
	o := harness.Options{
		Out: os.Stdout, Scale: *scale, Verify: *verify, Workers: *workers,
		MixedReaders: *mixedReaders, MixedWriters: *mixedWriters,
		MixedBatch: *mixedBatch, MixedReads: *mixedReads, MixedWriteRatio: *mixedRatio,
		DurableDir: durableDir, Hist: *hist,
	}
	if *faultSites > 0 {
		o.FaultSites = *faultSites
	}
	run := map[string]func(harness.Options) []harness.Row{
		"table1":      harness.Table1,
		"table2":      harness.Table2,
		"table3":      harness.Table3,
		"table4":      harness.Table4,
		"table5":      harness.Table5,
		"maintenance": harness.Maintenance,
		"parallel":    harness.ParallelScaling,
		"hubskew":     harness.HubSkew,
		"mixed":       harness.Mixed,
		"merge":       harness.MergeBench,
		"durability":  harness.Durability,
		"faults":      faultsweep.FaultSweep,
		"governed":    govbench.Governed,
		"served":      servedbench.Served,
	}
	var rows []harness.Row
	if *exp == "all" {
		for _, name := range []string{"table1", "table2", "table3", "table4", "table5", "maintenance", "parallel", "hubskew"} {
			rows = append(rows, run[name](o)...)
		}
	} else {
		f, ok := run[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			flag.Usage()
			os.Exit(2)
		}
		rows = f(o)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal rows: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d rows to %s\n", len(rows), *jsonPath)
	}
	if *baseline != "" {
		if regressed := harness.CompareBaseline(os.Stdout, baseRows, rows, *tolerance, *icostTolerance); regressed > 0 {
			os.Exit(1)
		}
	}
}
