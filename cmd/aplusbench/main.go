// Command aplusbench regenerates the paper's evaluation tables on the
// scaled synthetic datasets.
//
// Usage:
//
//	aplusbench -exp table2 [-scale 0.5]
//	aplusbench -exp all
//
// Experiments: table1, table2, table3, table4, table5, maintenance, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/aplusdb/aplus/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|table2|table3|table4|table5|maintenance|all")
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier")
	verify := flag.Bool("verify", true, "cross-check counts across configurations")
	flag.Parse()

	o := harness.Options{Out: os.Stdout, Scale: *scale, Verify: *verify}
	run := map[string]func(harness.Options) []harness.Row{
		"table1":      harness.Table1,
		"table2":      harness.Table2,
		"table3":      harness.Table3,
		"table4":      harness.Table4,
		"table5":      harness.Table5,
		"maintenance": harness.Maintenance,
	}
	if *exp == "all" {
		for _, name := range []string{"table1", "table2", "table3", "table4", "table5", "maintenance"} {
			run[name](o)
		}
		return
	}
	f, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	f(o)
}
