// Command aplusshell is a small interactive shell over an aplus database.
//
// By default it starts with a synthetic in-memory dataset (configurable
// with flags). With -db <dir> it opens a durable database instead: every
// write is crash-safe before the prompt returns, and the same directory
// reopens to the same state in the next session. With -connect <addr> it
// drives a remote aplusd cluster over TCP with the same REPL: queries fan
// out across the server's shards, Ctrl-C cancels in-flight remote queries,
// and governance errors carry the same meanings. It accepts:
//
//	MATCH ...                     run a query, print the match count
//	RECONFIGURE PRIMARY INDEXES   index DDL
//	CREATE 1-HOP VIEW ... / CREATE 2-HOP VIEW ... / DROP VIEW name
//	:explain MATCH ...            show the physical plan
//	:analyze MATCH ...            run the query with per-operator tracing
//	                              and render the EXPLAIN ANALYZE span tree
//	:agg FUNC [VAR.PROP] MATCH ...   aggregate over all matches: FUNC is
//	                              count|sum|min|max; sum/min/max read the
//	                              integer property PROP of matched vertex
//	                              VAR (e.g. :agg sum b.amount MATCH a-[e]->b)
//	:rows N MATCH ...             print the first N matches
//	:advise MATCH ... [; MATCH ...]   recommend indexes for a workload
//	                              (local sessions only)
//	:add vertex LABEL [k=v ...]   append a vertex (durable sessions)
//	:add edge SRC DST LABEL [k=v ...]   append an edge
//	:flush                        fold pending writes (and checkpoint -db)
//	:stats                        database, index, durability, plan-cache,
//	                              query governance counters, and latency
//	                              histograms (query, admission, fsync, fold)
//	:shards                       per-shard epoch, WAL, and governance
//	                              counters (one line in local sessions)
//	:health                       durability health: degraded mode, last
//	                              WAL/checkpoint errors, retry backoff,
//	                              latency percentiles, and the last query
//	                              panic / slow query (if any)
//	:limits [...]                 show or set per-session query limits
//	                              (timeout, i-cost, rows)
//	:quit
//
// Ctrl-C while a query is running cancels that query (the shell keeps
// going); at the prompt, use :quit to exit.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	aplus "github.com/aplusdb/aplus"
	"github.com/aplusdb/aplus/internal/client"
	"github.com/aplusdb/aplus/internal/proto"
)

func main() {
	preset := flag.String("preset", "berkstan", "dataset preset: orkut|livejournal|wikitopcats|berkstan")
	scale := flag.Float64("scale", 1.0, "dataset scale")
	seed := flag.Int64("seed", 1, "dataset seed")
	dbDir := flag.String("db", "", "open (creating if needed) a durable database in this directory instead of a synthetic in-memory dataset")
	connect := flag.String("connect", "", "drive a remote aplusd at this address instead of an embedded database")
	flag.Parse()

	var b backend
	switch {
	case *connect != "":
		cl, err := client.Dial(*connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		b = &remoteBackend{cl: cl}
		st, err := b.Stats()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("aplus shell — remote %s (%d shards, %d vertices, %d edges). Type :quit to exit.\n",
			*connect, cl.NumShards(), st.NumVertices, st.NumEdges)
	case *dbDir != "":
		db, err := aplus.Open(*dbDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		b = localBackend{db}
		st := db.Stats()
		fmt.Printf("aplus shell — durable db %s (%d vertices, %d edges; replayed %d WAL ops, checkpoint epoch %d). Type :quit to exit.\n",
			*dbDir, st.NumVertices, st.NumEdges, st.ReplayedOps, st.CheckpointEpoch)
	default:
		db, err := aplus.Generate(aplus.DatasetConfig{
			Preset: *preset, Scale: *scale, Seed: *seed, Financial: true, Time: true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		b = localBackend{db}
		st := db.Stats()
		fmt.Printf("aplus shell — %s (%d vertices, %d edges). Type :quit to exit.\n",
			*preset, st.NumVertices, st.NumEdges)
	}
	defer b.Close()

	s := &session{db: b}
	signal.Notify(s.sigint(), os.Interrupt)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("aplus> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if err := eval(s, line); err != nil {
			if err == errQuit {
				return
			}
			fmt.Println("error:", err)
		}
	}
}

var errQuit = fmt.Errorf("quit")

// backend abstracts the shell over an embedded database and a remote
// cluster: same REPL, same governance semantics, swapped transport.
type backend interface {
	CountProfiledLimited(ctx context.Context, q string, l aplus.QueryLimits) (int64, aplus.Metrics, error)
	QueryLimited(ctx context.Context, q string, l aplus.QueryLimits, fn func(aplus.Row) bool) error
	Aggregate(ctx context.Context, q string, fn aplus.AggFunc, variable, prop string, l aplus.QueryLimits) (aplus.AggValue, aplus.Metrics, error)
	Explain(q string) (string, error)
	Analyze(ctx context.Context, q string, l aplus.QueryLimits) (*aplus.QueryTrace, error)
	Exec(ddl string) error
	Flush() error
	AddVertex(label string, props aplus.Props) (aplus.VertexID, error)
	AddEdge(src, dst aplus.VertexID, label string, props aplus.Props) (aplus.EdgeID, error)
	Advise(workload []string, budgetBytes int64) ([]aplus.Recommendation, error)
	Stats() (aplus.Stats, error)
	Shards() (shardsInfo, error)
	Close() error
}

type shardsInfo struct {
	per      []aplus.Stats
	diverged bool
	cause    string
}

// localBackend adapts *aplus.DB (everything but Stats/Shards is the DB's
// own method set).
type localBackend struct{ *aplus.DB }

func (b localBackend) Stats() (aplus.Stats, error) { return b.DB.Stats(), nil }

func (b localBackend) Analyze(ctx context.Context, q string, l aplus.QueryLimits) (*aplus.QueryTrace, error) {
	return b.DB.ExplainAnalyzeLimited(ctx, q, l)
}

func (b localBackend) Aggregate(ctx context.Context, q string, fn aplus.AggFunc, variable, prop string, l aplus.QueryLimits) (aplus.AggValue, aplus.Metrics, error) {
	return b.DB.AggregateLimited(ctx, q, fn, variable, prop, l)
}

func (b localBackend) Shards() (shardsInfo, error) {
	return shardsInfo{per: []aplus.Stats{b.DB.Stats()}}, nil
}

// remoteBackend adapts the wire client.
type remoteBackend struct{ cl *client.Client }

func (b *remoteBackend) CountProfiledLimited(ctx context.Context, q string, l aplus.QueryLimits) (int64, aplus.Metrics, error) {
	return b.cl.CountProfiledLimited(ctx, q, l)
}

func (b *remoteBackend) QueryLimited(ctx context.Context, q string, l aplus.QueryLimits, fn func(aplus.Row) bool) error {
	_, err := b.cl.QueryLimited(ctx, q, l, 0, func(r proto.Row) bool {
		return fn(aplus.Row{Vertices: r.V, Edges: r.E})
	})
	return err
}

func (b *remoteBackend) Explain(q string) (string, error) { return b.cl.Explain(q) }

func (b *remoteBackend) Analyze(ctx context.Context, q string, l aplus.QueryLimits) (*aplus.QueryTrace, error) {
	t, err := b.cl.Analyze(ctx, q, l)
	if err != nil {
		return nil, err
	}
	return &t, nil
}
func (b *remoteBackend) Aggregate(ctx context.Context, q string, fn aplus.AggFunc, variable, prop string, l aplus.QueryLimits) (aplus.AggValue, aplus.Metrics, error) {
	return b.cl.Aggregate(ctx, q, fn, variable, prop, l)
}

func (b *remoteBackend) Exec(ddl string) error { return b.cl.Exec(ddl) }
func (b *remoteBackend) Flush() error          { return b.cl.Flush() }

func (b *remoteBackend) AddVertex(label string, props aplus.Props) (aplus.VertexID, error) {
	return b.cl.AddVertex(label, props)
}

func (b *remoteBackend) AddEdge(src, dst aplus.VertexID, label string, props aplus.Props) (aplus.EdgeID, error) {
	return b.cl.AddEdge(src, dst, label, props)
}

func (b *remoteBackend) Advise([]string, int64) ([]aplus.Recommendation, error) {
	return nil, fmt.Errorf(":advise is not supported over -connect (open the data directory locally)")
}

func (b *remoteBackend) Stats() (aplus.Stats, error) {
	st, err := b.cl.Stats()
	return st.Aggregate, err
}

func (b *remoteBackend) Shards() (shardsInfo, error) {
	st, err := b.cl.Stats()
	return shardsInfo{per: st.PerShard, diverged: st.Diverged, cause: st.DivergedCause}, err
}

func (b *remoteBackend) Close() error { return b.cl.Close() }

// session carries the shell's per-session governance settings and the
// SIGINT plumbing that cancels the in-flight query.
type session struct {
	db     backend
	limits aplus.QueryLimits
	sig    chan os.Signal
}

func (s *session) sigint() chan os.Signal {
	if s.sig == nil {
		s.sig = make(chan os.Signal, 1)
	}
	return s.sig
}

// queryCtx returns a context canceled by Ctrl-C for the duration of one
// query, plus a cleanup that must run when the query returns. A SIGINT
// delivered at the prompt (no query running) is drained at the start of
// the next query so it cannot cancel it spuriously.
func (s *session) queryCtx() (context.Context, func()) {
	select {
	case <-s.sigint():
	default:
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		select {
		case <-s.sigint():
			fmt.Println(" ^C canceling query")
			cancel()
		case <-done:
		}
	}()
	return ctx, func() { close(done); cancel() }
}

// explainQueryError renders governance failures with their partial-work
// detail instead of a bare error string.
func explainQueryError(err error) error {
	var be *aplus.BudgetError
	if errors.As(err, &be) {
		return fmt.Errorf("%w (partial: i-cost %d, rows %d)", err, be.Partial.ICost, be.PartialRows)
	}
	return err
}

func eval(s *session, line string) error {
	db := s.db
	lower := strings.ToLower(line)
	switch {
	case lower == ":quit" || lower == ":q" || lower == "exit":
		return errQuit
	case lower == ":stats":
		st, err := db.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("vertices=%d edges=%d graph=%dB primary(levels=%dB idlists=%dB) secondary=%dB\n",
			st.NumVertices, st.NumEdges, st.GraphBytes,
			st.PrimaryLevelBytes, st.PrimaryIDListBytes, st.SecondaryIndexBytes)
		if st.FoldsTotal > 0 || st.GroupCommits > 0 {
			fmt.Printf("folds: total=%d incremental=%d last(duration=%v dirty-owners=%d)",
				st.FoldsTotal, st.IncrementalFolds, st.LastFoldDuration, st.LastFoldDirtyOwners)
			if st.GroupCommits > 0 {
				fmt.Printf(" group-commits=%d(x%d ops)", st.GroupCommits, st.GroupedWrites)
			}
			fmt.Println()
		}
		if st.WALBytes > 0 || st.CheckpointEpoch > 0 {
			fmt.Printf("durable: wal=%dB checkpoint(epoch=%d %dB) replayed=%d pending=%d",
				st.WALBytes, st.CheckpointEpoch, st.CheckpointBytes, st.ReplayedOps, st.PendingWrites)
			if st.LastCheckpointError != "" {
				fmt.Printf(" checkpoint-error=%q", st.LastCheckpointError)
			}
			fmt.Println()
		}
		if st.PlanCacheHits > 0 || st.PlanCacheMisses > 0 {
			fmt.Printf("plan-cache: hits=%d misses=%d entries=%d\n",
				st.PlanCacheHits, st.PlanCacheMisses, st.PlanCacheEntries)
		}
		fmt.Printf("queries: in-flight=%d canceled=%d timed-out=%d rejected=%d slow=%d panicked=%d\n",
			st.QueriesInFlight, st.QueriesCanceled, st.QueriesTimedOut,
			st.QueriesRejected, st.SlowQueries, st.QueriesPanicked)
		printHist := func(name string, h aplus.LatencyStats) {
			if h.Count == 0 {
				return
			}
			fmt.Printf("%s: n=%d p50=%v p95=%v p99=%v max=%v\n",
				name, h.Count, h.P50, h.P95, h.P99, h.Max)
		}
		printHist("latency", st.QueryLatency)
		printHist("admission-wait", st.AdmissionWait)
		printHist("wal-fsync", st.WALFsync)
		printHist("fold", st.FoldDuration)
		return nil
	case lower == ":shards":
		info, err := db.Shards()
		if err != nil {
			return err
		}
		for i, st := range info.per {
			fmt.Printf("shard %d: epoch=%d vertices=%d edges=%d pending=%d wal=%dB replayed=%d plan-cache(hits=%d misses=%d) queries(in-flight=%d canceled=%d timed-out=%d rejected=%d)\n",
				i, st.Epoch, st.NumVertices, st.NumEdges, st.PendingWrites,
				st.WALBytes, st.ReplayedOps, st.PlanCacheHits, st.PlanCacheMisses,
				st.QueriesInFlight, st.QueriesCanceled, st.QueriesTimedOut, st.QueriesRejected)
		}
		if info.diverged {
			fmt.Printf("DIVERGED (writes disabled): %s\n", info.cause)
		}
		return nil
	case lower == ":health":
		st, err := db.Stats()
		if err != nil {
			return err
		}
		if st.Degraded {
			fmt.Printf("DEGRADED (read-only): %s\n", st.DegradedCause)
			fmt.Println("writes fail fast; reads keep serving; restart the process to recover from the durable prefix")
		} else {
			fmt.Println("healthy: writes accepted")
		}
		if st.LastWALError != "" {
			fmt.Printf("last wal error: %s\n", st.LastWALError)
		}
		if st.LastCheckpointError != "" {
			fmt.Printf("last checkpoint error: %s\n", st.LastCheckpointError)
		}
		if st.RetryBackoff > 0 || st.MergeRetries > 0 {
			fmt.Printf("fold/checkpoint retries=%d backoff=%v\n", st.MergeRetries, st.RetryBackoff)
		}
		if st.LastQueryPanic != "" {
			fmt.Printf("last query panic (isolated, %d total): %s\n", st.QueriesPanicked, st.LastQueryPanic)
		}
		if h := st.QueryLatency; h.Count > 0 {
			fmt.Printf("query latency: p50=%v p95=%v p99=%v max=%v (%d queries)\n",
				h.P50, h.P95, h.P99, h.Max, h.Count)
		}
		if sq := st.LastSlowQuery; sq != nil {
			fmt.Printf("last slow query (%d total): %v %s (i-cost %d, rows %d, %s)\n",
				st.SlowQueries, sq.Duration.Round(time.Microsecond), sq.Query, sq.ICost, sq.Rows, sq.Outcome)
		}
		return nil
	case lower == ":limits" || strings.HasPrefix(lower, ":limits "):
		return evalLimits(s, strings.TrimSpace(line[len(":limits"):]))
	case lower == ":flush":
		if err := db.Flush(); err != nil {
			return err
		}
		fmt.Println("ok")
		return nil
	case strings.HasPrefix(lower, ":add "):
		return evalAdd(db, strings.TrimSpace(line[len(":add "):]))
	case strings.HasPrefix(lower, ":explain "):
		plan, err := db.Explain(line[len(":explain "):])
		if err != nil {
			return err
		}
		fmt.Print(plan)
		return nil
	case strings.HasPrefix(lower, ":analyze "):
		ctx, finish := s.queryCtx()
		defer finish()
		t, err := db.Analyze(ctx, line[len(":analyze "):], s.limits)
		if t != nil {
			// A governance stop still yields the partial trace; render it
			// before reporting the stop.
			fmt.Print(t.Render())
		}
		if err != nil {
			return explainQueryError(err)
		}
		return nil
	case strings.HasPrefix(lower, ":agg "):
		return evalAgg(s, strings.TrimSpace(line[len(":agg "):]))
	case strings.HasPrefix(lower, ":rows "):
		rest := strings.TrimSpace(line[len(":rows "):])
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return fmt.Errorf("usage: :rows N MATCH ...")
		}
		n, err := strconv.Atoi(fields[0])
		if err != nil {
			return fmt.Errorf("bad row count %q", fields[0])
		}
		ctx, finish := s.queryCtx()
		defer finish()
		printed := 0
		err = db.QueryLimited(ctx, fields[1], s.limits, func(r aplus.Row) bool {
			fmt.Printf("%v %v\n", r.Vertices, r.Edges)
			printed++
			return printed < n
		})
		return explainQueryError(err)
	case strings.HasPrefix(lower, ":advise "):
		var workload []string
		for _, q := range strings.Split(line[len(":advise "):], ";") {
			if q = strings.TrimSpace(q); q != "" {
				workload = append(workload, q)
			}
		}
		recs, err := db.Advise(workload, 0)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			fmt.Println("no beneficial indexes found")
		}
		for _, r := range recs {
			fmt.Printf("benefit=%.0f mem=%dB  %s\n", r.Benefit, r.MemBytes, r.DDL)
		}
		return nil
	case strings.HasPrefix(lower, "match "):
		ctx, finish := s.queryCtx()
		defer finish()
		start := time.Now()
		n, m, err := db.CountProfiledLimited(ctx, line, s.limits)
		if err != nil {
			return explainQueryError(err)
		}
		fmt.Printf("%d matches (i-cost %d, %v)\n", n, m.ICost, time.Since(start).Round(time.Microsecond))
		return nil
	case strings.HasPrefix(lower, "reconfigure ") || strings.HasPrefix(lower, "create ") || strings.HasPrefix(lower, "drop "):
		if err := db.Exec(line); err != nil {
			return err
		}
		fmt.Println("ok")
		return nil
	default:
		return fmt.Errorf("unrecognised input (MATCH ..., DDL, :explain, :analyze, :agg, :rows, :advise, :add, :flush, :stats, :shards, :health, :limits, :quit)")
	}
}

// evalAgg handles ":agg FUNC [VAR.PROP] MATCH ...": count takes no target;
// sum/min/max aggregate the integer property PROP of matched vertex VAR.
func evalAgg(s *session, rest string) error {
	const usage = "usage: :agg count MATCH ... | :agg sum|min|max VAR.PROP MATCH ..."
	name, rest, ok := strings.Cut(rest, " ")
	if !ok {
		return fmt.Errorf(usage)
	}
	fn, err := aplus.ParseAggFunc(name)
	if err != nil {
		return err
	}
	rest = strings.TrimSpace(rest)
	var variable, prop string
	if fn != aplus.AggCount {
		target, q, ok := strings.Cut(rest, " ")
		if !ok {
			return fmt.Errorf(usage)
		}
		variable, prop, ok = strings.Cut(target, ".")
		if !ok || variable == "" || prop == "" {
			return fmt.Errorf("aggregate target %q is not VAR.PROP", target)
		}
		rest = strings.TrimSpace(q)
	}
	if !strings.HasPrefix(strings.ToLower(rest), "match ") {
		return fmt.Errorf(usage)
	}
	ctx, finish := s.queryCtx()
	defer finish()
	start := time.Now()
	v, m, err := s.db.Aggregate(ctx, rest, fn, variable, prop, s.limits)
	if err != nil {
		return explainQueryError(err)
	}
	if fn == aplus.AggCount {
		fmt.Printf("count=%d (i-cost %d, %v)\n", v.Value, m.ICost, time.Since(start).Round(time.Microsecond))
	} else if !v.Valid {
		fmt.Printf("%s(%s.%s)=NULL over %d matches (i-cost %d, %v)\n",
			fn, variable, prop, v.Rows, m.ICost, time.Since(start).Round(time.Microsecond))
	} else {
		fmt.Printf("%s(%s.%s)=%d over %d matches (i-cost %d, %v)\n",
			fn, variable, prop, v.Value, v.Rows, m.ICost, time.Since(start).Round(time.Microsecond))
	}
	return nil
}

// evalLimits shows or sets the session's query limits:
//
//	:limits                          show current limits
//	:limits timeout 500ms | off      per-query deadline
//	:limits icost 1000000 | off      i-cost budget
//	:limits rows 100000 | off        produced-row budget
//	:limits off                      clear everything
func evalLimits(s *session, rest string) error {
	show := func() {
		or := func(v string, unset bool) string {
			if unset {
				return "off"
			}
			return v
		}
		fmt.Printf("timeout=%s icost=%s rows=%s\n",
			or(s.limits.MaxDuration.String(), s.limits.MaxDuration == 0),
			or(strconv.FormatInt(s.limits.MaxICost, 10), s.limits.MaxICost == 0),
			or(strconv.FormatInt(s.limits.MaxRows, 10), s.limits.MaxRows == 0))
	}
	if rest == "" {
		show()
		return nil
	}
	fields := strings.Fields(strings.ToLower(rest))
	if len(fields) == 1 && fields[0] == "off" {
		s.limits = aplus.QueryLimits{}
		show()
		return nil
	}
	if len(fields) != 2 {
		return fmt.Errorf("usage: :limits [timeout DUR|off] [icost N|off] [rows N|off] [off]")
	}
	kind, val := fields[0], fields[1]
	setInt := func(dst *int64) error {
		if val == "off" {
			*dst = 0
		} else {
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return fmt.Errorf("bad limit %q", val)
			}
			*dst = n
		}
		return nil
	}
	switch kind {
	case "timeout":
		if val == "off" {
			s.limits.MaxDuration = 0
		} else {
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return fmt.Errorf("bad duration %q (try 500ms, 2s)", val)
			}
			s.limits.MaxDuration = d
		}
	case "icost":
		if err := setInt(&s.limits.MaxICost); err != nil {
			return err
		}
	case "rows":
		if err := setInt(&s.limits.MaxRows); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown limit %q (timeout, icost, rows)", kind)
	}
	show()
	return nil
}

// evalAdd handles ":add vertex LABEL [k=v ...]" and ":add edge SRC DST
// LABEL [k=v ...]". Values parse as int when possible, string otherwise.
func evalAdd(db backend, rest string) error {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return fmt.Errorf("usage: :add vertex LABEL [k=v ...] | :add edge SRC DST LABEL [k=v ...]")
	}
	parseProps := func(kvs []string) (aplus.Props, error) {
		if len(kvs) == 0 {
			return nil, nil
		}
		props := aplus.Props{}
		for _, kv := range kvs {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("property %q is not k=v", kv)
			}
			if n, err := strconv.ParseInt(v, 10, 64); err == nil {
				props[k] = n
			} else {
				props[k] = v
			}
		}
		return props, nil
	}
	switch strings.ToLower(fields[0]) {
	case "vertex":
		if len(fields) < 2 {
			return fmt.Errorf("usage: :add vertex LABEL [k=v ...]")
		}
		props, err := parseProps(fields[2:])
		if err != nil {
			return err
		}
		v, err := db.AddVertex(fields[1], props)
		if err != nil {
			return err
		}
		fmt.Printf("vertex %d\n", v)
		return nil
	case "edge":
		if len(fields) < 4 {
			return fmt.Errorf("usage: :add edge SRC DST LABEL [k=v ...]")
		}
		src, err1 := strconv.ParseUint(fields[1], 10, 32)
		dst, err2 := strconv.ParseUint(fields[2], 10, 32)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("SRC and DST must be vertex ids")
		}
		props, err := parseProps(fields[4:])
		if err != nil {
			return err
		}
		e, err := db.AddEdge(aplus.VertexID(src), aplus.VertexID(dst), fields[3], props)
		if err != nil {
			return err
		}
		fmt.Printf("edge %d\n", e)
		return nil
	default:
		return fmt.Errorf("usage: :add vertex ... | :add edge ...")
	}
}
