// Command aplusshell is a small interactive shell over an aplus database.
//
// It starts with a synthetic dataset (configurable with flags) and accepts:
//
//	MATCH ...                     run a query, print the match count
//	RECONFIGURE PRIMARY INDEXES   index DDL
//	CREATE 1-HOP VIEW ... / CREATE 2-HOP VIEW ...
//	:explain MATCH ...            show the physical plan
//	:rows N MATCH ...             print the first N matches
//	:advise MATCH ... [; MATCH ...]   recommend indexes for a workload
//	:stats                        database and index sizes
//	:quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	aplus "github.com/aplusdb/aplus"
)

func main() {
	preset := flag.String("preset", "berkstan", "dataset preset: orkut|livejournal|wikitopcats|berkstan")
	scale := flag.Float64("scale", 1.0, "dataset scale")
	seed := flag.Int64("seed", 1, "dataset seed")
	flag.Parse()

	db, err := aplus.Generate(aplus.DatasetConfig{
		Preset: *preset, Scale: *scale, Seed: *seed, Financial: true, Time: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := db.Stats()
	fmt.Printf("aplus shell — %s (%d vertices, %d edges). Type :quit to exit.\n",
		*preset, st.NumVertices, st.NumEdges)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("aplus> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if err := eval(db, line); err != nil {
			if err == errQuit {
				return
			}
			fmt.Println("error:", err)
		}
	}
}

var errQuit = fmt.Errorf("quit")

func eval(db *aplus.DB, line string) error {
	lower := strings.ToLower(line)
	switch {
	case lower == ":quit" || lower == ":q" || lower == "exit":
		return errQuit
	case lower == ":stats":
		st := db.Stats()
		fmt.Printf("vertices=%d edges=%d graph=%dB primary(levels=%dB idlists=%dB) secondary=%dB\n",
			st.NumVertices, st.NumEdges, st.GraphBytes,
			st.PrimaryLevelBytes, st.PrimaryIDListBytes, st.SecondaryIndexBytes)
		return nil
	case strings.HasPrefix(lower, ":explain "):
		plan, err := db.Explain(line[len(":explain "):])
		if err != nil {
			return err
		}
		fmt.Print(plan)
		return nil
	case strings.HasPrefix(lower, ":rows "):
		rest := strings.TrimSpace(line[len(":rows "):])
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return fmt.Errorf("usage: :rows N MATCH ...")
		}
		n, err := strconv.Atoi(fields[0])
		if err != nil {
			return fmt.Errorf("bad row count %q", fields[0])
		}
		printed := 0
		err = db.Query(fields[1], func(r aplus.Row) bool {
			fmt.Printf("%v %v\n", r.Vertices, r.Edges)
			printed++
			return printed < n
		})
		return err
	case strings.HasPrefix(lower, ":advise "):
		var workload []string
		for _, q := range strings.Split(line[len(":advise "):], ";") {
			if q = strings.TrimSpace(q); q != "" {
				workload = append(workload, q)
			}
		}
		recs, err := db.Advise(workload, 0)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			fmt.Println("no beneficial indexes found")
		}
		for _, r := range recs {
			fmt.Printf("benefit=%.0f mem=%dB  %s\n", r.Benefit, r.MemBytes, r.DDL)
		}
		return nil
	case strings.HasPrefix(lower, "match "):
		n, m, err := db.CountProfiled(line)
		if err != nil {
			return err
		}
		fmt.Printf("%d matches (i-cost %d)\n", n, m.ICost)
		return nil
	case strings.HasPrefix(lower, "reconfigure ") || strings.HasPrefix(lower, "create "):
		if err := db.Exec(line); err != nil {
			return err
		}
		fmt.Println("ok")
		return nil
	default:
		return fmt.Errorf("unrecognised input (MATCH ..., DDL, :explain, :rows, :advise, :stats, :quit)")
	}
}
