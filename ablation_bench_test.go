package aplus

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - offset lists versus bitmaps for secondary indexes (the alternative
//     the paper weighs in Section III-B3): space is reported as a custom
//     metric and access time is the benchmark measurement, across
//     predicate selectivities;
//   - shared versus owned partition levels for secondary vertex-
//     partitioned indexes;
//   - sorted (galloping) intersection versus binary-join probing on a
//     triangle workload.

import (
	"fmt"
	"testing"

	"github.com/aplusdb/aplus/internal/exec"
	"github.com/aplusdb/aplus/internal/gen"
	"github.com/aplusdb/aplus/internal/index"
	"github.com/aplusdb/aplus/internal/opt"
	"github.com/aplusdb/aplus/internal/pred"
	"github.com/aplusdb/aplus/internal/query"
	"github.com/aplusdb/aplus/internal/storage"
)

func ablationGraph() *storage.Graph {
	cfg := gen.BerkStan
	cfg.Financial = true
	cfg.Seed = 11
	return gen.Build(cfg)
}

// BenchmarkAblationOffsetVsBitmap measures read cost of the two secondary
// representations at three predicate selectivities. Offset lists touch
// only indexed edges; bitmaps scan every primary entry, so their relative
// cost grows as the predicate gets more selective — the paper's
// qualitative argument, measured.
func BenchmarkAblationOffsetVsBitmap(b *testing.B) {
	g := ablationGraph()
	p, err := index.BuildPrimary(g, index.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, sel := range []struct {
		name string
		amt  int64
	}{
		{"sel50", 500}, {"sel10", 900}, {"sel1", 990},
	} {
		viewPred := pred.Predicate{}.And(pred.ConstTerm(pred.VarAdj, storage.PropAmount, pred.GT, storage.Int(sel.amt)))
		off, err := index.BuildVertexPartitioned(p, index.VPDef{
			View: index.View1Hop{Name: "off" + sel.name, Pred: viewPred},
			Dirs: []index.Direction{index.FW},
			Cfg:  index.DefaultConfig(),
		})
		if err != nil {
			b.Fatal(err)
		}
		bm, err := index.BuildBitmapVP(p, "bm"+sel.name, viewPred, []index.Direction{index.FW})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("offsets/%s", sel.name), func(b *testing.B) {
			b.ReportMetric(float64(off.MemoryBytes()), "bytes")
			var sink int
			for i := 0; i < b.N; i++ {
				for v := 0; v < g.NumVertices(); v++ {
					l := off.List(index.FW, storage.VertexID(v), nil)
					for k := 0; k < l.Len(); k++ {
						sink += int(l.Nbr(k))
					}
				}
			}
			_ = sink
		})
		b.Run(fmt.Sprintf("bitmap/%s", sel.name), func(b *testing.B) {
			b.ReportMetric(float64(bm.MemoryBytes()), "bytes")
			var sink int
			for i := 0; i < b.N; i++ {
				for v := 0; v < g.NumVertices(); v++ {
					l := bm.List(index.FW, storage.VertexID(v), nil)
					for k := 0; k < l.Len(); k++ {
						sink += int(l.Nbr(k))
					}
				}
			}
			_ = sink
		})
	}
}

// BenchmarkAblationSharedLevels compares building and storing a secondary
// index that shares the primary's partition levels against one that owns
// its levels (forced by a trivially-true predicate, which disables
// sharing).
func BenchmarkAblationSharedLevels(b *testing.B) {
	g := ablationGraph()
	p, err := index.BuildPrimary(g, index.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	citySort := index.Config{
		Partitions: index.DefaultConfig().Partitions,
		Sorts:      []index.SortKey{{Var: pred.VarNbr, Prop: storage.PropCity}},
	}
	b.Run("shared", func(b *testing.B) {
		var mem int64
		for i := 0; i < b.N; i++ {
			v, err := index.BuildVertexPartitioned(p, index.VPDef{
				View: index.View1Hop{Name: "s"},
				Dirs: []index.Direction{index.FW},
				Cfg:  citySort,
			})
			if err != nil {
				b.Fatal(err)
			}
			mem = v.MemoryBytes()
		}
		b.ReportMetric(float64(mem), "bytes")
	})
	b.Run("owned", func(b *testing.B) {
		// amt >= 1 keeps every edge but forces private partition levels.
		keepAll := pred.Predicate{}.And(pred.ConstTerm(pred.VarAdj, storage.PropAmount, pred.GE, storage.Int(1)))
		var mem int64
		for i := 0; i < b.N; i++ {
			v, err := index.BuildVertexPartitioned(p, index.VPDef{
				View: index.View1Hop{Name: "o", Pred: keepAll},
				Dirs: []index.Direction{index.FW},
				Cfg:  citySort,
			})
			if err != nil {
				b.Fatal(err)
			}
			mem = v.MemoryBytes()
		}
		b.ReportMetric(float64(mem), "bytes")
	})
}

// BenchmarkAblationQueryShapes measures steady-state count throughput of
// the block-decoded execution core on the intersection-heavy shapes the
// zero-allocation work targets (triangle, diamond) plus a fan-out star
// where count pushdown folds the tail EXTENDs into a product. The runtime
// is reused across iterations, so allocs/op is the steady-state figure the
// zero-alloc contract pins at 0.
func BenchmarkAblationQueryShapes(b *testing.B) {
	g := ablationGraph()
	s, err := index.NewStore(g, index.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	shapes := []struct {
		name, cypher string
	}{
		{"triangle", "MATCH a1-[e1]->a2-[e2]->a3, a3-[e3]->a1"},
		{"diamond", "MATCH a1-[e1]->a2, a1-[e2]->a3, a2-[e3]->a4, a3-[e4]->a4"},
		{"star3", "MATCH a1-[e1]->a2, a1-[e2]->a3, a1-[e3]->a4"},
	}
	for _, shape := range shapes {
		q, err := query.Parse(shape.cypher)
		if err != nil {
			b.Fatal(err)
		}
		plan, err := opt.Optimize(s, q, opt.ModeDefault)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(shape.name, func(b *testing.B) {
			rt := exec.NewRuntime(s)
			var count int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				count = plan.Count(rt)
			}
			b.StopTimer()
			b.ReportMetric(float64(count), "matches")
		})
	}
}

// BenchmarkAblationWCOJVsBinary measures the triangle query under the full
// WCOJ plan space versus binary joins on the same store.
func BenchmarkAblationWCOJVsBinary(b *testing.B) {
	g := ablationGraph()
	s, err := index.NewStore(g, index.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	q, err := query.Parse("MATCH a1-[e1]->a2-[e2]->a3, a3-[e3]->a1")
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []struct {
		name string
		mode opt.Mode
	}{
		{"wcoj", opt.ModeDefault},
		{"binary", opt.ModeBinaryJoin},
	} {
		plan, err := opt.Optimize(s, q, m.mode)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(m.name, func(b *testing.B) {
			var icost int64
			for i := 0; i < b.N; i++ {
				rt := exec.NewRuntime(s)
				plan.Count(rt)
				icost = rt.ICost
			}
			b.ReportMetric(float64(icost), "icost")
		})
	}
}
