// Quickstart: build the paper's running example (Figure 1), ask the
// paper's example queries, and tune the indexes with the paper's DDL.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"

	aplus "github.com/aplusdb/aplus"
)

func main() {
	db := aplus.New()

	// Accounts v1..v5 and customers (Figure 1).
	type acct struct {
		acc, city string
		balance   int
	}
	var accounts []aplus.VertexID
	for _, a := range []acct{{"SV", "SF", 300}, {"CQ", "SF", 450}, {"SV", "BOS", 120}, {"CQ", "BOS", 80}, {"SV", "LA", 900}} {
		v, err := db.AddVertex("Account", aplus.Props{"acc": a.acc, "city": a.city, "balance": a.balance})
		if err != nil {
			log.Fatal(err)
		}
		accounts = append(accounts, v)
	}
	var customers []aplus.VertexID
	for _, name := range []string{"Charles", "Alice", "Bob"} {
		v, err := db.AddVertex("Customer", aplus.Props{"name": name})
		if err != nil {
			log.Fatal(err)
		}
		customers = append(customers, v)
	}
	// Ownerships: Alice owns v1 and v2.
	owns := [][2]int{{0, 2}, {0, 3}, {1, 0}, {1, 1}, {2, 4}}
	for _, o := range owns {
		if _, err := db.AddEdge(customers[o[0]], accounts[o[1]], "O", nil); err != nil {
			log.Fatal(err)
		}
	}
	// A few transfers with amount/currency/date.
	type tfr struct {
		src, dst int
		label    string
		amt      int
		cur      string
		date     int
	}
	for _, t := range []tfr{
		{0, 2, "W", 200, "EUR", 4},
		{0, 1, "W", 25, "EUR", 17},
		{0, 4, "DD", 30, "EUR", 18},
		{0, 3, "W", 80, "USD", 20},
		{1, 2, "DD", 75, "USD", 7},
		{1, 3, "W", 75, "USD", 8},
		{1, 4, "DD", 10, "GBP", 13},
		{4, 2, "W", 5, "GBP", 19},
	} {
		if _, err := db.AddEdge(accounts[t.src], accounts[t.dst], t.label,
			aplus.Props{"amt": t.amt, "currency": t.cur, "date": t.date}); err != nil {
			log.Fatal(err)
		}
	}

	// Example 2 of the paper: Wire transfers from the accounts Alice owns.
	q := "MATCH (c:Customer)-[r1:O]->(a1:Account)-[r2:W]->(a2:Account) WHERE c.name = 'Alice'"
	n, err := db.Count(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Wire transfers from Alice's accounts: %d\n", n)

	// Example 4: tune the primary index for currency-equality workloads.
	if err := db.Exec(`RECONFIGURE PRIMARY INDEXES
		PARTITION BY eadj.label, eadj.currency
		SORT BY vnbr.city`); err != nil {
		log.Fatal(err)
	}
	n, m, err := db.CountProfiled(q + ", r2.currency = 'EUR'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("...in EUR after reconfiguration: %d (i-cost %d)\n", n, m.ICost)

	// Writes after the indexes exist are snapshot-isolated: group them in
	// one Batch and they commit atomically — queries either see all of the
	// batch or none of it, and never block on it. (Writes also work one at
	// a time; Batch amortizes the commit over the group.)
	var v6 aplus.VertexID
	if err := db.Batch(func(b *aplus.Batch) error {
		var err error
		v6, err = b.AddVertex("Account", aplus.Props{"acc": "SV", "city": "SF"})
		if err != nil {
			return err
		}
		if _, err := b.AddEdge(accounts[0], v6, "W",
			aplus.Props{"amt": 60, "currency": "EUR", "date": 21}); err != nil {
			return err
		}
		_, err = b.AddEdge(v6, accounts[2], "W",
			aplus.Props{"amt": 15, "currency": "EUR", "date": 22})
		return err
	}); err != nil {
		log.Fatal(err)
	}
	n, err = db.Count(q + ", r2.currency = 'EUR'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("...including the batched transfers: %d\n", n)

	// Inspect the chosen plan.
	plan, err := db.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan:\n%s", plan)

	st := db.Stats()
	fmt.Printf("\n%d vertices, %d edges; primary index: %d B levels + %d B ID lists\n",
		st.NumVertices, st.NumEdges, st.PrimaryLevelBytes, st.PrimaryIDListBytes)

	// Query governance: every read accepts a context (CountCtx / QueryCtx)
	// and optional resource budgets. A canceled context or an expired
	// deadline stops the query within about one morsel of work, unpins its
	// snapshot, and returns a wrapped sentinel you can match with errors.Is:
	// aplus.ErrQueryCanceled, ErrQueryTimeout, ErrBudgetExceeded. Engine
	// panics never crash or poison the database — they come back as errors
	// wrapping aplus.ErrQueryPanic, and the next query runs normally.
	// DB.QueryTimeout, DB.Limits, and DB.MaxConcurrentQueries (or the same
	// fields on OpenOptions) set database-wide defaults.
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // a canceled context aborts before any work
	if _, err := db.CountCtx(ctx, q); !errors.Is(err, aplus.ErrQueryCanceled) {
		log.Fatalf("expected ErrQueryCanceled, got %v", err)
	}
	_, _, err = db.CountProfiledLimited(context.Background(), q, aplus.QueryLimits{MaxRows: 1})
	var be *aplus.BudgetError
	if !errors.As(err, &be) {
		log.Fatalf("expected a budget abort, got %v", err)
	}
	fmt.Printf("\ngoverned: %v (did %d rows, i-cost %d before the abort)\n",
		err, be.PartialRows, be.Partial.ICost)

	// Observability: ExplainAnalyze runs the query for real with
	// per-operator tracing armed — one span per plan operator with rows,
	// exclusive i-cost, and wall time, plus the per-worker split. The span
	// sums are bit-identical to CountProfiled on the same snapshot; tracing
	// is disarmed (zero-cost) for every other query. The same trace is
	// available remotely via the `analyze` verb and aplusshell's
	// `:analyze MATCH ...`.
	trace, err := db.ExplainAnalyze(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", trace.Render())

	// Aggregates: DB.Aggregate computes COUNT/SUM/MIN/MAX over all matches
	// of a query without materializing them — trailing fan-outs are folded
	// arithmetically (the same pushdown Count uses), and the parallel
	// executor merges per-worker (and work-stolen) partials exactly, so the
	// result is bit-identical at any Parallelism. SUM/MIN/MAX read an
	// integer property of one matched vertex variable; matches missing the
	// property count toward Rows but not the value (Valid reports whether
	// any non-NULL value was seen). Also available as the `aggregate` wire
	// verb and aplusshell's `:agg sum a1.balance MATCH ...`.
	agg, err := db.Aggregate("MATCH (c:Customer)-[r1:O]->(a1:Account)", aplus.AggSum, "a1", "balance")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal balance across owned accounts: %d over %d ownerships\n", agg.Value, agg.Rows)
	if mx, err := db.Aggregate(q, aplus.AggMax, "a2", "balance"); err == nil && mx.Valid {
		fmt.Printf("largest receiving balance on Alice's wires: %d\n", mx.Value)
	}

	// Every governed read also lands in lock-free latency histograms,
	// surfaced as log-bucketed quantiles in Stats (and per shard plus
	// cluster-aggregated on aplusd's -metrics Prometheus endpoint). Setting
	// SlowQueryThreshold captures reads over the bar — count, most recent
	// query with its plan, and a structured slog record when SlowQueryLog
	// is set (aplusd: -slow-query 250ms).
	ost := db.Stats()
	fmt.Printf("\nquery latency: n=%d p50=%v p99=%v max=%v\n",
		ost.QueryLatency.Count, ost.QueryLatency.P50, ost.QueryLatency.P99, ost.QueryLatency.Max)

	// Durable databases: Open a directory instead of New, and every commit
	// is crash-safe (written and fsync'd to the write-ahead log) before it
	// becomes visible; reopening the directory recovers the exact state of
	// the last durable commit — checkpoint plus WAL-tail replay.
	dir, err := os.MkdirTemp("", "aplus-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ddb, err := aplus.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	err = ddb.Batch(func(b *aplus.Batch) error {
		x, err := b.AddVertex("Account", aplus.Props{"city": "SF"})
		if err != nil {
			return err
		}
		y, err := b.AddVertex("Account", aplus.Props{"city": "BOS"})
		if err != nil {
			return err
		}
		_, err = b.AddEdge(x, y, "W", aplus.Props{"amt": 40, "currency": "EUR"})
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := ddb.Close(); err != nil {
		log.Fatal(err)
	}
	reopened, err := aplus.Open(dir) // recovery: checkpoint + WAL replay
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	n, err = reopened.Count("MATCH (a:Account)-[:W]->(b:Account)")
	if err != nil {
		log.Fatal(err)
	}
	dst := reopened.Stats()
	fmt.Printf("\ndurable reopen: %d wire transfer(s) survived restart (replayed %d WAL ops)\n",
		n, dst.ReplayedOps)

	// Failure semantics worth knowing before running on real disks:
	//
	//   - If a commit's WAL fsync fails, the database enters degraded
	//     read-only mode: that commit and every later write return an error
	//     wrapping aplus.ErrDegraded (check with errors.Is), while reads
	//     keep serving the last published snapshot. Restarting the process
	//     recovers every acknowledged commit; nothing is retried over the
	//     untrusted page cache. Stats().Degraded / DegradedCause /
	//     LastWALError report the state (aplusshell's :health prints them).
	//   - A full disk (ENOSPC) mid-commit does NOT degrade: the failing
	//     commit is rolled back to the last record boundary and writes may
	//     succeed again once space frees up.
	//   - Checkpoint failures are never fatal: the write-ahead log keeps
	//     the database recoverable, the failure shows up in
	//     Stats().LastCheckpointError, and the background merger retries
	//     with exponential backoff (tunable via OpenOptions.RetryBackoff).
	if dst.Degraded {
		log.Fatalf("unexpected degraded mode: %s", dst.DegradedCause)
	}
}
