// Labelled subgraph matching: the Section V-B scenario. The same cyclic
// query runs under three primary-index configurations — the default D,
// Ds (lists re-sorted by neighbour label), and Dp (a second partitioning
// level on neighbour labels) — showing how RECONFIGURE PRIMARY INDEXES
// tunes the system to a workload without touching the data.
package main

import (
	"fmt"
	"log"
	"time"

	aplus "github.com/aplusdb/aplus"
)

func main() {
	db, err := aplus.Generate(aplus.DatasetConfig{
		Preset:       "berkstan",
		VertexLabels: 4,
		EdgeLabels:   2,
		Seed:         3,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("labelled graph: %d vertices, %d edges, 4 vertex labels, 2 edge labels\n",
		st.NumVertices, st.NumEdges)

	// A labelled diamond (SQ7-shaped).
	q := `MATCH (a:V0)-[e1:E0]->(b:V1), (a)-[e2:E0]->(c:V1), (b)-[e3:E1]->(d:V0), (c)-[e4:E1]->(d)`

	run := func(config string) {
		start := time.Now()
		n, m, err := db.CountProfiled(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s diamond: %8d matches in %8v (i-cost %d)\n",
			config, n, time.Since(start).Round(time.Microsecond), m.ICost)
	}

	run("D")

	if err := db.Exec("RECONFIGURE PRIMARY INDEXES PARTITION BY eadj.label SORT BY vnbr.label"); err != nil {
		log.Fatal(err)
	}
	run("Ds")

	if err := db.Exec("RECONFIGURE PRIMARY INDEXES PARTITION BY eadj.label, vnbr.label"); err != nil {
		log.Fatal(err)
	}
	run("Dp")

	after := db.Stats()
	fmt.Printf("\nDp partition levels: %.1f KB over %.1f KB of ID lists (the paper's ~1.05-1.15x)\n",
		float64(after.PrimaryLevelBytes)/1024, float64(after.PrimaryIDListBytes)/1024)
}
