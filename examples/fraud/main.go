// Fraud detection: the paper's Section V-C2/V-D scenario. Generates a
// scaled financial graph, creates the VPc and EPc secondary indexes with
// the paper's DDL, runs the MF money-flow queries, and prints the
// Figure 6-style plan that mixes vertex- and edge-partitioned indexes.
package main

import (
	"fmt"
	"log"
	"time"

	aplus "github.com/aplusdb/aplus"
)

func main() {
	db, err := aplus.Generate(aplus.DatasetConfig{
		Preset:    "berkstan",
		Financial: true,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("financial graph: %d accounts, %d transfers\n", st.NumVertices, st.NumEdges)

	// MF3 (Figure 5c): a three-branched flow with same-city sinks and a
	// money-flow hop, anchored at low-ID accounts.
	mf3 := `MATCH a1-[e1]->a2, a1-[e2]->a3, a1-[e4]->a4, a3-[e3]->a5
	        WHERE a2.city = a4.city, a4.city = a5.city, a3.ID < 30,
	              a1.acc = 'CQ', a2.acc = 'CQ', a3.acc = 'CQ', a4.acc = 'CQ', a5.acc = 'SV',
	              e2.date < e3.date, e2.amt > e3.amt, e2.amt < e3.amt + 100`

	run := func(config string) {
		start := time.Now()
		n, m, err := db.CountProfiled(mf3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s MF3: %6d matches in %8v (i-cost %d)\n", config, n, time.Since(start).Round(time.Microsecond), m.ICost)
	}

	run("D")

	// VPc: city-sorted secondary lists in both directions (Example 6 style).
	if err := db.Exec(`CREATE 1-HOP VIEW VPc
		MATCH vs-[eadj]->vd
		INDEX AS FW-BW
		PARTITION BY eadj.label SORT BY vnbr.city`); err != nil {
		log.Fatal(err)
	}
	run("D+VPc")

	// EPc: the MoneyFlow 2-hop view (Example 7 plus Section V-D's banded
	// amount predicate and account-type partitioning).
	if err := db.Exec(`CREATE 2-HOP VIEW EPc
		MATCH vs-[eb]->vd-[eadj]->vnbr
		WHERE eb.date < eadj.date, eadj.amt < eb.amt, eb.amt < eadj.amt + 100
		INDEX AS PARTITION BY vnbr.acc SORT BY vnbr.city`); err != nil {
		log.Fatal(err)
	}
	run("D+VPc+EPc")

	plan, err := db.Explain(mf3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan with VPc+EPc (compare Figure 6 of the paper):\n%s", plan)

	after := db.Stats()
	fmt.Printf("\nsecondary index memory: %.1f KB over %.1f KB of primary ID lists\n",
		float64(after.SecondaryIndexBytes)/1024, float64(after.PrimaryIDListBytes)/1024)
}
