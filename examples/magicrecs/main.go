// MagicRecs: the Twitter recommendation workload of Section V-C1. A user
// a1 recently started following a2 and a3; the query finds their common
// followers to recommend to a1. A time-sorted secondary index (VPt) lets
// the engine read only the recent prefix of each adjacency list instead of
// filtering every edge.
package main

import (
	"fmt"
	"log"
	"time"

	aplus "github.com/aplusdb/aplus"
)

func main() {
	db, err := aplus.Generate(aplus.DatasetConfig{
		Preset: "wikitopcats",
		Time:   true,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("follower graph: %d users, %d follows\n", st.NumVertices, st.NumEdges)

	// Pick alpha at 5% selectivity of the time property, as the paper does.
	alpha, ok := db.PropertyPercentile("time", 5)
	if !ok {
		log.Fatal("no time property")
	}
	mr2 := fmt.Sprintf(`MATCH a1-[e1]->a2, a1-[e2]->a3, a4-[e3]->a2, a4-[e4]->a3
	                    WHERE e1.time < %d, e2.time < %d`, alpha, alpha)

	run := func(config string) {
		start := time.Now()
		n, m, err := db.CountProfiled(mr2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s MR2: %8d recommendations in %8v (i-cost %d, predicate evals %d)\n",
			config, n, time.Since(start).Round(time.Microsecond), m.ICost, m.PredEvals)
	}

	run("D")

	// VPt shares the primary's partition levels (zero level overhead) and
	// sorts each list on the follow time.
	if err := db.Exec(`CREATE 1-HOP VIEW VPt
		MATCH vs-[eadj]->vd
		INDEX AS FW
		PARTITION BY eadj.label SORT BY eadj.time`); err != nil {
		log.Fatal(err)
	}
	run("D+VPt")

	after := db.Stats()
	fmt.Printf("\nVPt offset lists cost %.1f KB (primary ID lists: %.1f KB)\n",
		float64(after.SecondaryIndexBytes)/1024, float64(after.PrimaryIDListBytes)/1024)
}
