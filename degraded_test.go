package aplus

import (
	"errors"
	"testing"

	"github.com/aplusdb/aplus/internal/vfs"
)

// A failed WAL fsync must drop the database into degraded read-only mode:
// the failing commit and every later write report ErrDegraded, reads keep
// serving the last published snapshot, no checkpoint is taken over the
// untrusted state, and reopening recovers exactly the acknowledged commits.
func TestDegradedModeServesReadsRejectsWrites(t *testing.T) {
	mem := vfs.NewMem()
	fi := vfs.NewFaulty(mem)
	db, err := OpenOptions{VFS: fi, MergeThreshold: 1 << 30}.Open("/db")
	if err != nil {
		t.Fatal(err)
	}

	var vs []VertexID
	if err := db.Batch(func(b *Batch) error {
		for i := 0; i < 4; i++ {
			v, err := b.AddVertex("Account", nil)
			if err != nil {
				return err
			}
			vs = append(vs, v)
		}
		for i := 0; i < 3; i++ {
			if _, err := b.AddEdge(vs[i], vs[i+1], "W", nil); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	const q = "MATCH (a:Account)-[:W]->(b:Account)"
	count, err := db.Count(q)
	if err != nil || count != 3 {
		t.Fatalf("count %d %v, want 3", count, err)
	}

	// The next commit issues exactly [write, sync] against the WAL: fail
	// the fsync, once.
	fi.FailAt(fi.OpCount() + 2)
	err = db.Batch(func(b *Batch) error {
		_, err := b.AddEdge(vs[3], vs[0], "W", nil)
		return err
	})
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("want ErrDegraded, got %v", err)
	}

	// Reads keep serving the last published snapshot — the failed commit
	// is invisible.
	if count, err = db.Count(q); err != nil || count != 3 {
		t.Fatalf("degraded read: count %d %v, want 3", count, err)
	}
	// Every later write fails fast, even though the fault was one-shot.
	err = db.Batch(func(b *Batch) error {
		_, err := b.AddEdge(vs[2], vs[0], "W", nil)
		return err
	})
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("second write after poison: want ErrDegraded, got %v", err)
	}

	st := db.Stats()
	if !st.Degraded || st.DegradedCause == "" || st.LastWALError == "" {
		t.Fatalf("stats not degraded: %+v", st)
	}
	// No checkpoint over untrusted state: Flush's fold succeeds in memory
	// but the checkpoint hook is suppressed.
	if err := db.Flush(); err != nil {
		t.Fatalf("flush must stay non-fatal: %v", err)
	}
	if got := db.Stats().CheckpointEpoch; got != 0 {
		t.Fatalf("checkpoint %d written while degraded", got)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash, reopen: the three acknowledged edges survive, degraded mode
	// is gone, and writes work again.
	mem.Crash()
	db2, err := OpenOptions{VFS: mem}.Open("/db")
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if count, err = db2.Count(q); err != nil || count != 3 {
		t.Fatalf("recovered count %d %v, want 3", count, err)
	}
	if db2.Stats().Degraded {
		t.Fatal("reopen must clear degraded mode")
	}
	if err := db2.Batch(func(b *Batch) error {
		_, err := b.AddEdge(VertexID(3), VertexID(0), "W", nil)
		return err
	}); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	if count, err = db2.Count(q); err != nil || count != 4 {
		t.Fatalf("post-recovery count %d %v, want 4", count, err)
	}
}
